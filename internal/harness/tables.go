package harness

import (
	"fmt"
	"strings"

	"repro/internal/htm"
	"repro/internal/stagger"
	"repro/internal/workloads"
)

// PaperThreads is the thread count of the paper's evaluation machine.
const PaperThreads = 16

// yn renders a boolean as the paper's Y/N.
func yn(b bool) string {
	if b {
		return "Y"
	}
	return "N"
}

// Table1Row is one row of Table 1 (HTM contention characterization).
type Table1Row struct {
	Bench  string
	S      float64 // speedup at 16 threads over sequential
	PctI   float64 // fraction of txns forced irrevocable
	WU     float64 // wasted/useful transactional cycles
	Source string  // contention source (workload metadata)
	LA, LP bool    // locality of conflict addresses / PCs
}

// table1Sources matches the paper's "Contention Source" column.
var table1Sources = map[string]string{
	"list-hi":   "linked-list",
	"tsp":       "priority queue",
	"memcached": "statistics information",
	"intruder":  "task queue",
	"kmeans":    "arrays",
	"vacation":  "red-black trees",
}

// table1Benches is Table 1's row order.
var table1Benches = []string{"list-hi", "tsp", "memcached", "intruder", "kmeans", "vacation"}

// Table1 characterizes baseline-HTM contention for the paper's six
// representative benchmarks.
func Table1(seed int64) ([]Table1Row, error) {
	var cells []RunConfig
	for _, b := range table1Benches {
		cells = append(cells,
			RunConfig{Benchmark: b, Mode: stagger.ModeHTM, Threads: 1, Seed: seed},
			RunConfig{Benchmark: b, Mode: stagger.ModeHTM, Threads: PaperThreads, Seed: seed})
	}
	warm(cells)
	var rows []Table1Row
	for _, b := range table1Benches {
		s, res, err := speedupCached(RunConfig{
			Benchmark: b, Mode: stagger.ModeHTM, Threads: PaperThreads, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Bench:  b,
			S:      s,
			PctI:   res.Stats.IrrevocableFraction(),
			WU:     res.WastedOverUseful(),
			Source: table1Sources[b],
			LA:     res.LA,
			LP:     res.LP,
		})
	}
	return rows, nil
}

// FormatTable1 renders Table 1 in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: HTM contention in representative benchmarks\n")
	fmt.Fprintf(&b, "%-10s %5s %5s %6s  %-24s %2s %2s\n",
		"Benchmark", "S", "%I", "W/U", "Contention Source", "LA", "LP")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %5.1f %4.0f%% %6.2f  %-24s %2s %2s\n",
			r.Bench, r.S, r.PctI*100, r.WU, r.Source, yn(r.LA), yn(r.LP))
	}
	return b.String()
}

// Table2 renders the simulated machine configuration.
func Table2() string {
	c := htm.DefaultConfig()
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Configuration of the HTM simulator\n")
	fmt.Fprintf(&b, "CPU cores     %d cores, %d-wide issue, virtual-time lock-step\n", c.Cores, c.IssueWidth)
	fmt.Fprintf(&b, "L1 cache      %d lines x 64B, %d-way, %d-cycle\n", c.L1Lines, c.L1Ways, c.L1Lat)
	fmt.Fprintf(&b, "L2 cache      private presence model, %d-cycle\n", c.L2Lat)
	fmt.Fprintf(&b, "L3 cache      shared presence model, %d-cycle\n", c.L3Lat)
	fmt.Fprintf(&b, "Memory        %d-cycle\n", c.MemLat)
	fmt.Fprintf(&b, "HTM           2-bit (r/w) per L1 line, eager requester-wins\n")
	fmt.Fprintf(&b, "Stag. Trans.  %d-bit PC tag per L1 line\n", c.PCTagBits)
	return b.String()
}

// Table3Row is one row of Table 3 (instrumentation stats + accuracy).
type Table3Row struct {
	Bench         string
	LdSt          int     // static loads/stores analyzed
	Anchors       int     // static anchors instrumented
	UopsPerTxn    float64 // dynamic µ-ops per txn (1 thread)
	AnchorsPerTxn float64 // dynamic anchors per txn (1 thread)
	ExecTimeInc   float64 // 1-thread slowdown from instrumentation
	Accuracy      float64 // anchor identification accuracy (16 threads)
}

// table3Benches: the paper's Table 3 has one "list" row; we use list-hi.
var table3Benches = []string{"genome", "intruder", "kmeans", "labyrinth",
	"ssca2", "vacation", "list-hi", "tsp", "memcached"}

// Table3 measures instrumentation overhead and accuracy.
func Table3(seed int64) ([]Table3Row, error) {
	var cells []RunConfig
	for _, b := range table3Benches {
		cells = append(cells,
			RunConfig{Benchmark: b, Mode: stagger.ModeHTM, Threads: 1, Seed: seed},
			RunConfig{Benchmark: b, Mode: stagger.ModeStaggeredHW, Threads: 1, Seed: seed},
			RunConfig{Benchmark: b, Mode: stagger.ModeStaggeredHW, Threads: PaperThreads, Seed: seed})
	}
	warm(cells)
	var rows []Table3Row
	for _, b := range table3Benches {
		base1, err := runVerified(RunConfig{Benchmark: b, Mode: stagger.ModeHTM, Threads: 1, Seed: seed})
		if err != nil {
			return nil, err
		}
		inst1, err := runVerified(RunConfig{Benchmark: b, Mode: stagger.ModeStaggeredHW, Threads: 1, Seed: seed})
		if err != nil {
			return nil, err
		}
		inst16, err := runVerified(RunConfig{Benchmark: b, Mode: stagger.ModeStaggeredHW, Threads: PaperThreads, Seed: seed})
		if err != nil {
			return nil, err
		}
		inc := float64(inst1.Makespan())/float64(base1.Makespan()) - 1
		rows = append(rows, Table3Row{
			Bench:         b,
			LdSt:          inst1.StaticAccesses,
			Anchors:       inst1.StaticAnchors,
			UopsPerTxn:    inst1.UopsPerTxn(),
			AnchorsPerTxn: inst1.AnchorsPerTxn(),
			ExecTimeInc:   inc,
			Accuracy:      inst16.Metrics.Accuracy(),
		})
	}
	return rows, nil
}

// FormatTable3 renders Table 3 in the paper's layout.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: Static and dynamic statistics of instrumentation\n")
	fmt.Fprintf(&b, "%-10s | %6s %6s | %9s %9s %8s | %8s\n",
		"Program", "ld/st", "anchs", "uops/txn", "anch/txn", "time+", "Accuracy")
	for _, r := range rows {
		inc := fmt.Sprintf("%.1f%%", r.ExecTimeInc*100)
		if r.ExecTimeInc < 0.01 {
			inc = "<1%"
		}
		fmt.Fprintf(&b, "%-10s | %6d %6d | %9.1f %9.1f %8s | %7.1f%%\n",
			r.Bench, r.LdSt, r.Anchors, r.UopsPerTxn, r.AnchorsPerTxn, inc, r.Accuracy*100)
	}
	return b.String()
}

// Table4Row is one row of Table 4 (benchmark characteristics).
type Table4Row struct {
	Bench       string
	Description string
	ABs         int
	PctTM       float64
	S           float64
	AbtsPerC    float64
	Contention  string
}

// Table4 characterizes every benchmark on the baseline HTM.
func Table4(seed int64) ([]Table4Row, error) {
	var cells []RunConfig
	for _, b := range workloads.Names() {
		cells = append(cells,
			RunConfig{Benchmark: b, Mode: stagger.ModeHTM, Threads: 1, Seed: seed},
			RunConfig{Benchmark: b, Mode: stagger.ModeHTM, Threads: PaperThreads, Seed: seed})
	}
	warm(cells)
	var rows []Table4Row
	for _, b := range workloads.Names() {
		w, err := workloads.Get(b)
		if err != nil {
			return nil, err
		}
		s, res, err := speedupCached(RunConfig{
			Benchmark: b, Mode: stagger.ModeHTM, Threads: PaperThreads, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table4Row{
			Bench:       b,
			Description: w.Description,
			ABs:         len(w.Mod.Atomics),
			PctTM:       res.TMFraction(),
			S:           s,
			AbtsPerC:    res.AbortsPerCommit(),
			Contention:  w.Contention,
		})
	}
	return rows, nil
}

// FormatTable4 renders Table 4 in the paper's layout.
func FormatTable4(rows []Table4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: Benchmark characteristics\n")
	fmt.Fprintf(&b, "%-10s %-52s %4s %5s %5s %7s %10s\n",
		"Program", "Description and input", "ABs", "%TM", "S", "Abts/C", "Contention")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-52s %4d %4.0f%% %5.1f %7.2f %10s\n",
			r.Bench, r.Description, r.ABs, r.PctTM*100, r.S, r.AbtsPerC, r.Contention)
	}
	return b.String()
}

// Figure7Row holds one benchmark's bars: speedup of each system at 16
// threads normalized to the eager-HTM baseline.
type Figure7Row struct {
	Bench    string
	HTM      float64 // 1.0 by construction
	AddrOnly float64
	StagSW   float64
	StagHW   float64
}

// Figure7 regenerates the performance comparison.
func Figure7(seed int64) ([]Figure7Row, error) {
	var cells []RunConfig
	for _, b := range workloads.Names() {
		for _, m := range []stagger.Mode{stagger.ModeHTM, stagger.ModeAddrOnly, stagger.ModeStaggeredSW, stagger.ModeStaggeredHW} {
			cells = append(cells, RunConfig{Benchmark: b, Mode: m, Threads: PaperThreads, Seed: seed})
		}
	}
	warm(cells)
	var rows []Figure7Row
	for _, b := range workloads.Names() {
		base, err := runVerified(RunConfig{Benchmark: b, Mode: stagger.ModeHTM, Threads: PaperThreads, Seed: seed})
		if err != nil {
			return nil, err
		}
		row := Figure7Row{Bench: b, HTM: 1.0}
		for _, m := range []stagger.Mode{stagger.ModeAddrOnly, stagger.ModeStaggeredSW, stagger.ModeStaggeredHW} {
			res, err := runVerified(RunConfig{Benchmark: b, Mode: m, Threads: PaperThreads, Seed: seed})
			if err != nil {
				return nil, err
			}
			norm := float64(base.Makespan()) / float64(res.Makespan())
			switch m {
			case stagger.ModeAddrOnly:
				row.AddrOnly = norm
			case stagger.ModeStaggeredSW:
				row.StagSW = norm
			case stagger.ModeStaggeredHW:
				row.StagHW = norm
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFigure7 renders the figure as a table plus ASCII bars.
func FormatFigure7(rows []Figure7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: Performance normalized to eager HTM (16 threads)\n")
	fmt.Fprintf(&b, "%-10s %6s %9s %13s %10s\n", "Benchmark", "HTM", "AddrOnly", "Staggered+SW", "Staggered")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %6.2f %9.2f %13.2f %10.2f\n",
			r.Bench, r.HTM, r.AddrOnly, r.StagSW, r.StagHW)
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s HTM  %s\n", r.Bench, bar(r.HTM))
		fmt.Fprintf(&b, "%-10s Stag %s\n", "", bar(r.StagHW))
	}
	return b.String()
}

func bar(v float64) string {
	n := int(v*20 + 0.5)
	if n < 0 {
		n = 0
	}
	if n > 60 {
		n = 60
	}
	return strings.Repeat("#", n) + fmt.Sprintf(" %.2f", v)
}

// Figure8Row holds one benchmark's abort and wasted-cycle ratios for the
// baseline and staggered systems.
type Figure8Row struct {
	Bench                string
	HTMAbortsPerCommit   float64
	StagAbortsPerCommit  float64
	HTMWastedOverUseful  float64
	StagWastedOverUseful float64
}

// Figure8 regenerates the abort/wasted-cycle comparison.
func Figure8(seed int64) ([]Figure8Row, error) {
	var cells []RunConfig
	for _, b := range workloads.Names() {
		cells = append(cells,
			RunConfig{Benchmark: b, Mode: stagger.ModeHTM, Threads: PaperThreads, Seed: seed},
			RunConfig{Benchmark: b, Mode: stagger.ModeStaggeredHW, Threads: PaperThreads, Seed: seed})
	}
	warm(cells)
	var rows []Figure8Row
	for _, b := range workloads.Names() {
		base, err := runVerified(RunConfig{Benchmark: b, Mode: stagger.ModeHTM, Threads: PaperThreads, Seed: seed})
		if err != nil {
			return nil, err
		}
		stag, err := runVerified(RunConfig{Benchmark: b, Mode: stagger.ModeStaggeredHW, Threads: PaperThreads, Seed: seed})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Figure8Row{
			Bench:                b,
			HTMAbortsPerCommit:   base.AbortsPerCommit(),
			StagAbortsPerCommit:  stag.AbortsPerCommit(),
			HTMWastedOverUseful:  base.WastedOverUseful(),
			StagWastedOverUseful: stag.WastedOverUseful(),
		})
	}
	return rows, nil
}

// FormatFigure8 renders the figure data.
func FormatFigure8(rows []Figure8Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: (a) aborts per commit and (b) wasted/useful cycles (16 threads)\n")
	fmt.Fprintf(&b, "%-10s | %10s %10s | %10s %10s\n",
		"Benchmark", "(a) HTM", "(a) Stag", "(b) HTM", "(b) Stag")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s | %10.2f %10.2f | %10.2f %10.2f\n",
			r.Bench, r.HTMAbortsPerCommit, r.StagAbortsPerCommit,
			r.HTMWastedOverUseful, r.StagWastedOverUseful)
	}
	return b.String()
}

// Claims aggregates the headline numbers of Sections 6.2 and 6.3.
type ClaimsSummary struct {
	HarmonicMeanImprovement float64 // Fig. 7 StagHW vs HTM, harmonic mean
	MaxAbortReduction       float64 // Fig. 8(a), best case
	MeanAbortReduction      float64 // Fig. 8(a), mean excluding ssca2
	MeanWastedSavings       float64 // Fig. 8(b), mean excluding ssca2
	InstrumentedFraction    float64 // Table 3, anchors / loads+stores
	MinAccuracy             float64 // Table 3
}

// Claims computes the paper's summary statistics from the figure data.
func Claims(seed int64) (*ClaimsSummary, error) {
	f7, err := Figure7(seed)
	if err != nil {
		return nil, err
	}
	f8, err := Figure8(seed)
	if err != nil {
		return nil, err
	}
	t3, err := Table3(seed)
	if err != nil {
		return nil, err
	}
	cs := &ClaimsSummary{MinAccuracy: 1}

	// Harmonic mean of per-benchmark improvements.
	var invSum float64
	for _, r := range f7 {
		invSum += 1 / r.StagHW
	}
	cs.HarmonicMeanImprovement = float64(len(f7))/invSum - 1

	n := 0
	for _, r := range f8 {
		if r.Bench == "ssca2" { // too few aborts to be meaningful (paper)
			continue
		}
		if r.HTMAbortsPerCommit > 0 {
			red := 1 - r.StagAbortsPerCommit/r.HTMAbortsPerCommit
			cs.MeanAbortReduction += red
			if red > cs.MaxAbortReduction {
				cs.MaxAbortReduction = red
			}
		}
		if r.HTMWastedOverUseful > 0 {
			cs.MeanWastedSavings += 1 - r.StagWastedOverUseful/r.HTMWastedOverUseful
		}
		n++
	}
	cs.MeanAbortReduction /= float64(n)
	cs.MeanWastedSavings /= float64(n)

	var lds, anchs int
	for _, r := range t3 {
		lds += r.LdSt
		anchs += r.Anchors
		if r.Accuracy < cs.MinAccuracy {
			cs.MinAccuracy = r.Accuracy
		}
	}
	cs.InstrumentedFraction = float64(anchs) / float64(lds)
	return cs, nil
}

// FormatClaims renders the summary against the paper's claims.
func FormatClaims(cs *ClaimsSummary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Headline claims (paper -> measured)\n")
	fmt.Fprintf(&b, "harmonic-mean improvement:  24%%  -> %5.1f%%\n", cs.HarmonicMeanImprovement*100)
	fmt.Fprintf(&b, "max abort reduction:        89%%  -> %5.1f%%\n", cs.MaxAbortReduction*100)
	fmt.Fprintf(&b, "mean abort reduction:       64%%  -> %5.1f%%\n", cs.MeanAbortReduction*100)
	fmt.Fprintf(&b, "mean wasted-cycle savings:  43%%  -> %5.1f%%\n", cs.MeanWastedSavings*100)
	fmt.Fprintf(&b, "ld/st instrumented:         13%%  -> %5.1f%%\n", cs.InstrumentedFraction*100)
	fmt.Fprintf(&b, "min anchor accuracy:        95%%  -> %5.1f%%\n", cs.MinAccuracy*100)
	return b.String()
}

// speedupCached is Speedup over runVerified.
func speedupCached(rc RunConfig) (float64, *Result, error) {
	seq := rc
	seq.Mode = stagger.ModeHTM
	seq.Threads = 1
	seqRes, err := runVerified(seq)
	if err != nil {
		return 0, nil, err
	}
	parRes, err := runVerified(rc)
	if err != nil {
		return 0, nil, err
	}
	return float64(seqRes.Makespan()) / float64(parRes.Makespan()), parRes, nil
}

// runVerified is RunCached plus invariant enforcement: a run whose
// workload Verify failed is an error, never a data point. Every table and
// figure generator goes through it so a correctness bug cannot silently
// become a (meaningless) performance number.
func runVerified(rc RunConfig) (*Result, error) {
	res, err := RunCached(rc)
	if err != nil {
		return nil, err
	}
	if res.VerifyErr != nil {
		return nil, fmt.Errorf("harness: %s (%s, %d threads): verify failed: %w",
			rc.Benchmark, rc.Mode, rc.Threads, res.VerifyErr)
	}
	return res, nil
}

// LazyRow compares eager and lazy conflict detection for one benchmark:
// baseline speedups and the staggered improvement on each substrate. The
// paper's conclusion proposes extending the simulations to lazy TM
// protocols; staggered transactions are designed to be independent of
// the resolution policy, so the improvement should carry over.
type LazyRow struct {
	Bench      string
	EagerBase  float64 // 16-thread speedup over sequential, eager HTM
	LazyBase   float64 // same, lazy HTM
	EagerStagg float64 // staggered speedup normalized to eager baseline
	LazyStagg  float64 // staggered speedup normalized to lazy baseline
}

// FigureLazy runs the lazy-TM extension experiment over a representative
// benchmark subset (the high-contention winners plus a low-contention
// guard).
func FigureLazy(seed int64) ([]LazyRow, error) {
	lazyBenches := []string{"intruder", "kmeans", "list-hi", "memcached", "tsp", "vacation"}
	var cells []RunConfig
	for _, b := range lazyBenches {
		for _, lazy := range []bool{false, true} {
			cells = append(cells,
				RunConfig{Benchmark: b, Mode: stagger.ModeHTM, Threads: 1, Seed: seed, Lazy: lazy},
				RunConfig{Benchmark: b, Mode: stagger.ModeHTM, Threads: PaperThreads, Seed: seed, Lazy: lazy},
				RunConfig{Benchmark: b, Mode: stagger.ModeStaggeredHW, Threads: PaperThreads, Seed: seed, Lazy: lazy})
		}
	}
	warm(cells)
	var rows []LazyRow
	for _, b := range lazyBenches {
		row := LazyRow{Bench: b}
		for _, lazy := range []bool{false, true} {
			seq, err := runVerified(RunConfig{Benchmark: b, Mode: stagger.ModeHTM, Threads: 1, Seed: seed, Lazy: lazy})
			if err != nil {
				return nil, err
			}
			base, err := runVerified(RunConfig{Benchmark: b, Mode: stagger.ModeHTM, Threads: PaperThreads, Seed: seed, Lazy: lazy})
			if err != nil {
				return nil, err
			}
			stag, err := runVerified(RunConfig{Benchmark: b, Mode: stagger.ModeStaggeredHW, Threads: PaperThreads, Seed: seed, Lazy: lazy})
			if err != nil {
				return nil, err
			}
			s := float64(seq.Makespan()) / float64(base.Makespan())
			n := float64(base.Makespan()) / float64(stag.Makespan())
			if lazy {
				row.LazyBase, row.LazyStagg = s, n
			} else {
				row.EagerBase, row.EagerStagg = s, n
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFigureLazy renders the lazy-TM extension results.
func FormatFigureLazy(rows []LazyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Lazy-TM extension: staggered transactions on both resolution policies\n")
	fmt.Fprintf(&b, "%-10s | %10s %10s | %12s %12s\n",
		"Benchmark", "eager S", "lazy S", "stag/eager", "stag/lazy")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s | %10.1f %10.1f | %12.2f %12.2f\n",
			r.Bench, r.EagerBase, r.LazyBase, r.EagerStagg, r.LazyStagg)
	}
	return b.String()
}

// ScalingRow holds one thread-count point of a scaling curve.
type ScalingRow struct {
	Threads int
	HTM     float64 // speedup over 1-thread sequential
	Stag    float64
}

// Scaling sweeps thread counts for one benchmark under the baseline and
// staggered systems (the paper notes, e.g., that list-hi "stops scaling
// after 4 threads" on plain HTM).
func Scaling(bench string, seed int64) ([]ScalingRow, error) {
	cells := []RunConfig{{Benchmark: bench, Mode: stagger.ModeHTM, Threads: 1, Seed: seed}}
	for _, th := range []int{1, 2, 4, 8, 16} {
		cells = append(cells,
			RunConfig{Benchmark: bench, Mode: stagger.ModeHTM, Threads: th, Seed: seed},
			RunConfig{Benchmark: bench, Mode: stagger.ModeStaggeredHW, Threads: th, Seed: seed})
	}
	warm(cells)
	seq, err := runVerified(RunConfig{Benchmark: bench, Mode: stagger.ModeHTM, Threads: 1, Seed: seed})
	if err != nil {
		return nil, err
	}
	var rows []ScalingRow
	for _, th := range []int{1, 2, 4, 8, 16} {
		base, err := runVerified(RunConfig{Benchmark: bench, Mode: stagger.ModeHTM, Threads: th, Seed: seed})
		if err != nil {
			return nil, err
		}
		stag, err := runVerified(RunConfig{Benchmark: bench, Mode: stagger.ModeStaggeredHW, Threads: th, Seed: seed})
		if err != nil {
			return nil, err
		}
		rows = append(rows, ScalingRow{
			Threads: th,
			HTM:     float64(seq.Makespan()) / float64(base.Makespan()),
			Stag:    float64(seq.Makespan()) / float64(stag.Makespan()),
		})
	}
	return rows, nil
}

// FormatScaling renders a scaling curve.
func FormatScaling(bench string, rows []ScalingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scaling: %s (speedup over sequential)\n", bench)
	fmt.Fprintf(&b, "%8s %8s %10s\n", "threads", "HTM", "Staggered")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d %8.2f %10.2f\n", r.Threads, r.HTM, r.Stag)
	}
	return b.String()
}
