package harness

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/chaos"
	"repro/internal/sched"
	"repro/internal/stagger"
)

// TestReplayFidelity: a recorded adversarial run must replay
// bit-identically — same aggregate and per-core statistics (including
// per-cause abort counts) and the same transaction event trace (commit
// order), for both scheduler strategies across several workloads.
func TestReplayFidelity(t *testing.T) {
	benches := []string{"list-hi", "kmeans", "intruder", "memcached"}
	for _, spec := range []string{"random", "pct:3"} {
		for _, bench := range benches {
			t.Run(spec+"/"+bench, func(t *testing.T) {
				rc := RunConfig{
					Benchmark: bench,
					Mode:      stagger.ModeStaggeredHW,
					Threads:   4,
					Seed:      11,
					TotalOps:  240,
					TraceN:    2048,
					Sched:     spec,
					SchedSeed: 1234,
					Record:    true,
				}
				rec, err := Run(rc)
				if err != nil {
					t.Fatalf("record run: %v", err)
				}
				if len(rec.SchedPicks) == 0 {
					t.Fatalf("scheduler made no decisions; exploration is a no-op")
				}

				rp := rc
				rp.Record = false
				rp.ReplayPicks = rec.SchedPicks
				rep, err := Run(rp)
				if err != nil {
					t.Fatalf("replay run: %v", err)
				}
				if !reflect.DeepEqual(rec.Stats, rep.Stats) {
					t.Errorf("replay stats diverge:\nrecorded: %+v\nreplayed: %+v", rec.Stats, rep.Stats)
				}
				if !reflect.DeepEqual(rec.Trace, rep.Trace) {
					t.Errorf("replay event trace diverges (%d vs %d events)",
						len(rec.Trace), len(rep.Trace))
				}
			})
		}
	}
}

// TestReplayTraceFile: the trace file written for a run replays it via the
// replay:<file> scheduler spec, the CLI's reproduction path.
func TestReplayTraceFile(t *testing.T) {
	rc := RunConfig{
		Benchmark: "list-hi",
		Mode:      stagger.ModeStaggeredHW,
		Threads:   4,
		Seed:      11,
		TotalOps:  240,
		Sched:     "pct:3",
		SchedSeed: 99,
		Record:    true,
	}
	rec, err := Run(rc)
	if err != nil {
		t.Fatalf("record run: %v", err)
	}
	tr := &sched.Trace{
		Version: sched.TraceVersion,
		Spec:    rc.Sched,
		Seed:    rc.SchedSeed,
		Bench:   rc.Benchmark,
		Mode:    rc.Mode.String(),
		Threads: rc.Threads,
		WlSeed:  rc.Seed,
		Window:  sched.DefaultWindow,
		Picks:   rec.SchedPicks,
	}
	path := filepath.Join(t.TempDir(), "fail.trace")
	if err := tr.WriteFile(path); err != nil {
		t.Fatalf("write trace: %v", err)
	}

	rp := rc
	rp.Record = false
	rp.Sched = "replay:" + path
	rep, err := Run(rp)
	if err != nil {
		t.Fatalf("replay run: %v", err)
	}
	if !reflect.DeepEqual(rec.Stats, rep.Stats) {
		t.Fatalf("trace-file replay diverges from recording")
	}
	_ = os.Remove(path)
}

// TestExploreCleanCampaign: a seeded campaign over correct protocols must
// find zero serializability violations, in both baseline and staggered
// modes, while validating a healthy number of commits.
func TestExploreCleanCampaign(t *testing.T) {
	for _, mode := range []stagger.Mode{stagger.ModeHTM, stagger.ModeStaggeredHW} {
		for _, bench := range []string{"list-hi", "kmeans", "tsp"} {
			rep, err := Explore(ExploreConfig{
				Benchmark: bench,
				Mode:      mode,
				Threads:   4,
				Seed:      17,
				TotalOps:  160,
				Spec:      "pct:3",
				Runs:      4,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", bench, mode, err)
			}
			if len(rep.Failures) != 0 {
				t.Fatalf("%s/%s: campaign flagged a correct protocol: %v",
					bench, mode, rep.Failures[0].Err)
			}
			if rep.Commits == 0 {
				t.Fatalf("%s/%s: campaign validated no commits", bench, mode)
			}
		}
	}
}

// TestExploreComposesWithChaos: fault x schedule sweeps are one campaign —
// adversarial schedules with fault injection on the hardened runtime must
// still find zero violations on a correct protocol.
func TestExploreComposesWithChaos(t *testing.T) {
	scfg := stagger.HardenedConfig(stagger.ModeStaggeredHW)
	ccfg := chaos.Scaled(0.01, 42)
	rep, err := Explore(ExploreConfig{
		Benchmark: "list-hi",
		Mode:      stagger.ModeStaggeredHW,
		Threads:   4,
		Seed:      19,
		TotalOps:  160,
		Stagger:   &scfg,
		Chaos:     &ccfg,
		Spec:      "pct:3",
		Runs:      4,
	})
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if len(rep.Failures) != 0 {
		t.Fatalf("chaos x schedule campaign flagged a correct protocol: %v", rep.Failures[0].Err)
	}
	if rep.Commits == 0 {
		t.Fatal("campaign validated no commits")
	}
}

// TestExploreCatchesEarlyReleaseAndMinimizes: the acceptance scenario —
// with the test-only broken irrevocable fallback (global lock released
// before the body), an exploration campaign must catch the atomicity
// violation, and minimization must shrink the failing schedule to at most
// 25% of its original decision count.
func TestExploreCatchesEarlyReleaseAndMinimizes(t *testing.T) {
	// A tiny retry budget makes irrevocable fallbacks (the broken path)
	// frequent under contention. intruder's decoder transaction is the
	// right victim: it stores to the shared fragment map, computes for 450
	// cycles, then pushes to the result queue — so with the global lock
	// wrongly released, concurrent decoders commit half views of it.
	scfg := stagger.DefaultConfig(stagger.ModeHTM)
	scfg.MaxRetries = 1
	rep, err := Explore(ExploreConfig{
		Benchmark:          "intruder",
		Mode:               stagger.ModeHTM,
		Threads:            4,
		Seed:               23,
		Stagger:            &scfg,
		Spec:               "pct:3",
		Runs:               12,
		Minimize:           true,
		MinimizeBudget:     200,
		UnsafeEarlyRelease: true,
	})
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if len(rep.Failures) == 0 {
		t.Fatalf("campaign missed the broken irrevocable fallback (%d runs, %d commits)",
			rep.Runs, rep.Commits)
	}
	minimizedOne := false
	for _, f := range rep.Failures {
		if f.Minimized == nil {
			continue
		}
		minimizedOne = true
		if lim := len(f.Picks) / 4; len(f.Minimized) > lim {
			t.Errorf("minimized schedule has %d decisions, want <= %d (of %d)",
				len(f.Minimized), lim, len(f.Picks))
		}
	}
	if !minimizedOne {
		t.Fatalf("no failure reproduced under replay; minimization never ran")
	}
}

// TestCacheKeyDistinguishesSchedulers: memoization must never serve a
// baseline result for a scheduled run, a differently-seeded schedule, or
// an oracle-checked run (and vice versa).
func TestCacheKeyDistinguishesSchedulers(t *testing.T) {
	ClearCache()
	defer ClearCache()
	base := RunConfig{Benchmark: "list-lo", Mode: stagger.ModeHTM, Threads: 2, Seed: 5, TotalOps: 120}

	r1, err := RunCached(base)
	if err != nil {
		t.Fatal(err)
	}
	sc := base
	sc.Sched = "random"
	sc.SchedSeed = 7
	r2, err := RunCached(sc)
	if err != nil {
		t.Fatal(err)
	}
	if r1 == r2 {
		t.Fatalf("cache returned the baseline result for a scheduled run")
	}
	if r1.Stats.Makespan == r2.Stats.Makespan {
		t.Logf("note: scheduled and baseline runs happen to share a makespan")
	}
	sc2 := sc
	sc2.SchedSeed = 8
	r3, err := RunCached(sc2)
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r2 {
		t.Fatalf("cache conflated two scheduler seeds")
	}
	oc := base
	oc.Oracle = true
	r4, err := RunCached(oc)
	if err != nil {
		t.Fatal(err)
	}
	if r4 == r1 {
		t.Fatalf("cache conflated oracle and plain runs")
	}
	if r4.OracleCommits == 0 {
		t.Fatalf("oracle run validated no commits")
	}
	// Identical scheduled configs must still hit the cache.
	r5, err := RunCached(sc)
	if err != nil {
		t.Fatal(err)
	}
	if r5 != r2 {
		t.Fatalf("identical scheduled run missed the cache")
	}
}

// TestOracleCleanAcrossWorkloadsAndModes: every workload's reference model
// validates a short oracle-checked run in baseline and staggered modes —
// the per-workload wiring (tags, models, final checks) is sound.
func TestOracleCleanAcrossWorkloadsAndModes(t *testing.T) {
	for _, mode := range []stagger.Mode{stagger.ModeHTM, stagger.ModeStaggeredHW} {
		for _, bench := range []string{
			"genome", "intruder", "kmeans", "labyrinth", "ssca2",
			"vacation", "list-lo", "list-hi", "tsp", "memcached",
		} {
			t.Run(bench+"/"+mode.String(), func(t *testing.T) {
				res, err := Run(RunConfig{
					Benchmark: bench,
					Mode:      mode,
					Threads:   4,
					Seed:      29,
					Sched:     "random",
					SchedSeed: 31,
					Oracle:    true,
				})
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				if res.VerifyErr != nil {
					t.Fatalf("verify: %v", res.VerifyErr)
				}
				if res.OracleErr != nil {
					t.Fatalf("oracle: %v", res.OracleErr)
				}
				if res.OracleCommits == 0 {
					t.Fatalf("oracle observed no commits")
				}
			})
		}
	}
}
