package harness

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/htm"
	"repro/internal/stagger"
)

// bigCell is a cell far too large to finish in the cancellation tests'
// grace windows: at the benchmarked ~3M simulated events/s a million
// list operations take tens of seconds, and the tests cancel within
// milliseconds. If cancellation ever regresses back to draining queued
// or in-flight work, these tests time out instead of passing slowly.
func bigCell(seed int64) RunConfig {
	return RunConfig{Benchmark: "list-hi", Mode: stagger.ModeStaggeredHW,
		Threads: 4, Seed: seed, TotalOps: 1_000_000}
}

// TestRunCtxCancelsMidRun: cancelling the context must abandon a single
// in-flight simulation promptly (one globally ordered event per core),
// returning an error that wraps context.Canceled.
func TestRunCtxCancelsMidRun(t *testing.T) {
	ClearCache()
	defer ClearCache()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := RunCtx(ctx, bigCell(3))
	elapsed := time.Since(start)
	if res != nil || err == nil {
		t.Fatalf("RunCtx = (%v, %v), want (nil, cancellation error)", res, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	// Generous bound: abandoning takes one event per core, the full run
	// tens of seconds. A drained run fails this loudly.
	if elapsed > 10*time.Second {
		t.Fatalf("cancelled run took %v, should abandon almost immediately", elapsed)
	}
}

// TestRunAllCancelPromptAndCacheConsistent: a cancelled sweep must (a)
// return within one run's duration instead of draining queued cells, and
// (b) leave the result cache consistent — completed cells cached, the
// cancelled and never-started cells absent, so later sweeps recompute
// them from scratch.
func TestRunAllCancelPromptAndCacheConsistent(t *testing.T) {
	ClearCache()
	defer ClearCache()
	small := RunConfig{Benchmark: "list-hi", Mode: stagger.ModeStaggeredHW,
		Threads: 4, Seed: 11, TotalOps: 80}
	cfgs := []RunConfig{small, bigCell(5), bigCell(6), bigCell(7), bigCell(8)}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	out := RunAll(ctx, cfgs, 2) // 2 workers: cells 2.. stay queued behind the big ones
	elapsed := time.Since(start)
	if elapsed > 10*time.Second {
		t.Fatalf("cancelled sweep took %v, should abandon almost immediately", elapsed)
	}
	if len(out) != len(cfgs) {
		t.Fatalf("got %d outcomes, want %d", len(out), len(cfgs))
	}
	sawCancel := 0
	for i, o := range out {
		if o.Err != nil {
			if !errors.Is(o.Err, context.Canceled) {
				t.Fatalf("cell %d error %v does not wrap context.Canceled", i, o.Err)
			}
			sawCancel++
		}
	}
	if sawCancel == 0 {
		t.Fatal("no cell observed the cancellation")
	}

	// Cache consistency: no cancelled cell may have left an entry behind.
	for i, rc := range cfgs {
		key, ok := cacheableKey(rc)
		if !ok {
			t.Fatalf("cell %d unexpectedly uncacheable", i)
		}
		cacheMu.Lock()
		_, hit := cache[key]
		cacheMu.Unlock()
		if hit != (out[i].Err == nil) {
			t.Fatalf("cell %d: cache hit=%v but outcome err=%v", i, hit, out[i].Err)
		}
	}
	// And the small cell, if it completed, must be served byte-for-byte
	// consistently with a fresh compute.
	if out[0].Err == nil {
		ClearCache()
		fresh, err := Run(small)
		if err != nil {
			t.Fatal(err)
		}
		if fresh.Makespan() != out[0].Res.Makespan() || fresh.Stats.Commits != out[0].Res.Stats.Commits {
			t.Fatal("completed cell's cached result differs from a fresh compute")
		}
	}
}

// TestRunAllContainedIsolatesPanics: a panicking cell must become a
// *PanicError outcome without disturbing its siblings.
func TestRunAllContainedIsolatesPanics(t *testing.T) {
	ClearCache()
	defer ClearCache()
	good := RunConfig{Benchmark: "list-hi", Mode: stagger.ModeStaggeredHW,
		Threads: 2, Seed: 13, TotalOps: 60}
	bad := good
	// A machine override with a misaligned heap base fails htm.Config
	// validation, which panics inside the run — the exact poisoned-config
	// shape the service layer must survive.
	mc := htm.DefaultConfig()
	mc.HeapBase = 3
	bad.Machine = &mc

	out := RunAllContained(context.Background(), []RunConfig{good, bad, good}, 2)
	if out[0].Err != nil || out[2].Err != nil {
		t.Fatalf("healthy cells failed: %v / %v", out[0].Err, out[2].Err)
	}
	var pe *PanicError
	if out[1].Err == nil || !errors.As(out[1].Err, &pe) {
		t.Fatalf("poisoned cell outcome %v, want *PanicError", out[1].Err)
	}
}
