package harness

import (
	"context"
	"fmt"

	"repro/internal/chaos"
	"repro/internal/sched"
	"repro/internal/stagger"
)

// ExploreConfig describes a schedule-exploration campaign: many runs of
// one experiment cell under an adversarial scheduler, each with a fresh
// scheduler seed, each recorded and checked by the serializability oracle.
type ExploreConfig struct {
	// Benchmark / Mode / Backend / Capacity / Threads / Seed / TotalOps
	// select the cell, as in RunConfig. Seed fixes the workload; only the
	// schedule varies.
	Benchmark string
	Mode      stagger.Mode
	Backend   string
	Capacity  int
	Threads   int
	Seed      int64
	TotalOps  int
	// Stagger optionally overrides the runtime configuration (nil = the
	// paper's defaults for Mode), e.g. a tiny retry budget to provoke
	// irrevocable fallbacks.
	Stagger *stagger.Config
	// Chaos composes fault injection with schedule exploration: every
	// explored schedule also runs under the given deterministic fault
	// config, so fault x schedule sweeps are one campaign.
	Chaos *chaos.Config

	// Spec is the scheduler specification ("" = "pct:3"); replay specs make
	// no sense here and are rejected.
	Spec string
	// Runs is the number of schedules to explore (0 = 100).
	Runs int

	// Minimize shrinks each failing schedule to a short decision prefix by
	// delta debugging (re-running the cell per probe).
	Minimize bool
	// MinimizeBudget caps replay probes per failure (0 = 512).
	MinimizeBudget int

	// UnsafeEarlyRelease plumbs the test-only broken irrevocable fallback
	// through to the runtime, so tests can prove campaigns catch it.
	UnsafeEarlyRelease bool
	// WatchdogTrace sizes the watchdog event ring (0 = 256: exploration
	// keeps a deeper tail than the htm default because adversarial
	// schedules are exactly the runs whose ends are worth reading).
	WatchdogTrace int

	// Progress, if non-nil, is called after every run.
	Progress func(run int, failed bool)

	// Ctx, if non-nil, bounds the campaign: cancellation abandons in-flight
	// runs at their next globally ordered events and aborts the campaign
	// with an error wrapping ctx's error (the service layer's job deadlines
	// and drain ride on this). Nil runs to completion, exactly as before.
	Ctx context.Context
}

// ExploreFailure is one failing schedule, with enough to reproduce it.
type ExploreFailure struct {
	// SchedSeed reproduces the schedule generatively (same Spec + seed).
	SchedSeed int64
	// Err is the oracle violation or workload verification failure.
	Err error
	// Picks is the recorded decision sequence (replays the failure).
	Picks []uint32
	// Minimized is the shortest failing prefix found (nil if minimization
	// was off or the failure stopped reproducing under replay).
	Minimized []uint32
	// Probes is how many replay runs minimization spent.
	Probes int
}

// Trace packages the failure as a writable trace for `-sched=replay:`.
func (f *ExploreFailure) Trace(ec ExploreConfig) *sched.Trace {
	spec, _ := sched.Parse(exploreSpec(ec))
	picks := f.Picks
	if f.Minimized != nil {
		picks = f.Minimized
	}
	return &sched.Trace{
		Version: sched.TraceVersion,
		Spec:    exploreSpec(ec),
		Seed:    f.SchedSeed,
		Bench:   ec.Benchmark,
		Mode:    ec.Mode.String(),
		Threads: ec.Threads,
		WlSeed:  ec.Seed,
		Ops:     ec.TotalOps,
		Window:  spec.Window,
		Picks:   picks,
	}
}

// ExploreReport aggregates one campaign.
type ExploreReport struct {
	Config   ExploreConfig
	Runs     int
	Commits  int // oracle-validated commits across all runs
	Failures []ExploreFailure
}

func exploreSpec(ec ExploreConfig) string {
	if ec.Spec == "" {
		return "pct:3"
	}
	return ec.Spec
}

// Explore runs a schedule-exploration campaign. Infrastructure errors
// (unknown benchmark, watchdog timeout) abort the campaign; serializability
// violations and workload verification failures are collected as findings.
func Explore(ec ExploreConfig) (*ExploreReport, error) {
	spec, err := sched.Parse(exploreSpec(ec))
	if err != nil {
		return nil, err
	}
	if spec.Kind == "replay" {
		return nil, fmt.Errorf("harness: explore needs a generative scheduler, not %q", ec.Spec)
	}
	if ec.Runs <= 0 {
		ec.Runs = 100
	}
	if ec.Seed == 0 {
		ec.Seed = 42
	}
	wt := ec.WatchdogTrace
	if wt == 0 {
		wt = 256
	}

	// Every explored schedule is an independent cell (distinct scheduler
	// seed, same workload), so the campaign fans out across the package
	// worker default. Results fold into the report strictly in run order —
	// counts, failure list, minimization, and Progress callbacks are
	// indistinguishable from a sequential campaign.
	cfgs := make([]RunConfig, ec.Runs)
	for i := range cfgs {
		// Distinct, nonzero scheduler seeds; the workload seed stays fixed
		// so every run explores the same program.
		cfgs[i] = RunConfig{
			Benchmark:          ec.Benchmark,
			Mode:               ec.Mode,
			Backend:            ec.Backend,
			Capacity:           ec.Capacity,
			Threads:            ec.Threads,
			Seed:               ec.Seed,
			TotalOps:           ec.TotalOps,
			Stagger:            ec.Stagger,
			Chaos:              ec.Chaos,
			Sched:              exploreSpec(ec),
			SchedSeed:          ec.Seed + int64(i)*1_000_003 + 1,
			Record:             true,
			Oracle:             true,
			UnsafeEarlyRelease: ec.UnsafeEarlyRelease,
			WatchdogTrace:      wt,
		}
	}
	ctx := ec.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	rep := &ExploreReport{Config: ec}
	err = runAllOrdered(ctx, cfgs, Workers(), func(i int, o RunOutcome) error {
		ss := cfgs[i].SchedSeed
		if o.Err != nil {
			return fmt.Errorf("harness: explore run %d (sched seed %d): %w", i, ss, o.Err)
		}
		res := o.Res
		rep.Runs++
		rep.Commits += res.OracleCommits
		ferr := res.OracleErr
		if ferr == nil {
			ferr = res.VerifyErr
		}
		if ferr != nil {
			f := ExploreFailure{SchedSeed: ss, Err: ferr, Picks: res.SchedPicks}
			if ec.Minimize {
				// Minimization probes run here, on the delivering goroutine,
				// so they serialize in run order like the sequential loop.
				f.Minimized, f.Probes = minimizeFailure(cfgs[i], f.Picks, ec.MinimizeBudget)
			}
			rep.Failures = append(rep.Failures, f)
		}
		if ec.Progress != nil {
			ec.Progress(i, ferr != nil)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// minimizeFailure delta-debugs a failing decision sequence: a candidate
// subsequence "fails" if replaying it (falling back to the deterministic
// rule once exhausted) still produces an oracle or verification failure.
func minimizeFailure(rc RunConfig, picks []uint32, budget int) ([]uint32, int) {
	if budget <= 0 {
		budget = 512
	}
	probe := rc
	probe.Record = false
	probes := 0
	fail := func(p []uint32) bool {
		probes++
		if p == nil {
			p = []uint32{}
		}
		probe.ReplayPicks = p
		res, err := Run(probe)
		if err != nil {
			return false // infra error: treat the candidate as passing
		}
		return res.OracleErr != nil || res.VerifyErr != nil
	}
	// The full sequence must reproduce under replay at all, or there is
	// nothing sound to minimize.
	if !fail(picks) {
		return nil, probes
	}
	return sched.Minimize(picks, fail, budget), probes
}
