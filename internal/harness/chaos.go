package harness

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/chaos"
	"repro/internal/htm"
	"repro/internal/stagger"
	"repro/internal/workloads"
)

// A chaos campaign sweeps fault-injection rates across benchmarks and
// checks that the hardened runtime degrades gracefully: every cell must
// finish under the watchdog and pass its workload's Verify invariants,
// whatever mix of spurious aborts, delayed NT stores, lost lock releases,
// and stall jitter is thrown at it. The output is a degradation curve —
// makespan at each fault rate normalized to the fault-free run — which is
// the robustness analogue of Figure 7.

// ChaosSweep configures one campaign.
type ChaosSweep struct {
	// Benchmarks to sweep; empty means all workloads.
	Benchmarks []string
	// Rates are the per-event fault probabilities to sweep. The first
	// rate-0 cell (added automatically if absent) is the degradation
	// denominator. Empty means {0, 0.002, 0.01, 0.05}.
	Rates []float64
	// Mode under test; campaigns default to full staggered transactions.
	Mode stagger.Mode
	// Threads per cell (default PaperThreads).
	Threads int
	// Seed drives both the workload and the fault schedule.
	Seed int64
	// TotalOps overrides each workload's default operation count (0 =
	// default; campaigns usually shorten runs).
	TotalOps int
	// Watchdog bounds each cell's virtual time (default 200M cycles) so a
	// livelocked cell fails loudly with its last trace events.
	Watchdog uint64
	// Stagger overrides the runtime config; nil uses HardenedConfig, the
	// self-healing configuration the campaign exists to exercise.
	Stagger *stagger.Config
}

// ChaosCell is one (benchmark, rate) result.
type ChaosCell struct {
	Bench string
	Rate  float64

	Makespan uint64
	Commits  uint64
	Aborts   uint64
	Spurious uint64 // injected-abort deliveries observed by the HTM

	LocksReclaimed  uint64
	LockTimeouts    uint64
	LivelockEscapes uint64

	// Faults counts what the injector actually fired, by class.
	Faults chaos.Counts

	// Degradation is Makespan over the same benchmark's rate-0 makespan.
	Degradation float64

	// VerifyErr records an invariant failure (the sweep also returns an
	// error, but the cell is kept for diagnosis).
	VerifyErr error
}

func (cs *ChaosSweep) defaults() {
	if len(cs.Benchmarks) == 0 {
		cs.Benchmarks = workloads.Names()
	}
	if len(cs.Rates) == 0 {
		cs.Rates = []float64{0, 0.002, 0.01, 0.05}
	}
	if cs.Rates[0] != 0 {
		cs.Rates = append([]float64{0}, cs.Rates...)
	}
	if cs.Threads == 0 {
		cs.Threads = PaperThreads
	}
	if cs.Seed == 0 {
		cs.Seed = 42
	}
	if cs.Watchdog == 0 {
		cs.Watchdog = 200_000_000
	}
	if cs.Stagger == nil {
		scfg := stagger.HardenedConfig(cs.Mode)
		cs.Stagger = &scfg
	}
}

// RunChaosSweep runs the campaign. It returns the cells in sweep order
// and an error if any cell hit the watchdog or failed verification —
// graceful degradation means slower, never wrong or stuck. Cells execute
// in parallel (up to the package worker default) but are folded into the
// report strictly in sweep order, so output and error reporting match a
// sequential campaign exactly.
func RunChaosSweep(cs ChaosSweep) ([]ChaosCell, error) {
	cs.defaults()
	type cellMeta struct {
		bench string
		rate  float64
	}
	var cfgs []RunConfig
	var metas []cellMeta
	for _, b := range cs.Benchmarks {
		for _, rate := range cs.Rates {
			rc := RunConfig{
				Benchmark: b,
				Mode:      cs.Mode,
				Threads:   cs.Threads,
				Seed:      cs.Seed,
				TotalOps:  cs.TotalOps,
				Watchdog:  cs.Watchdog,
				Stagger:   cs.Stagger,
			}
			if rate > 0 {
				ccfg := chaos.Scaled(rate, cs.Seed)
				rc.Chaos = &ccfg
			}
			cfgs = append(cfgs, rc)
			metas = append(metas, cellMeta{b, rate})
		}
	}
	var cells []ChaosCell
	var firstErr error
	var base uint64
	err := runAllOrdered(context.Background(), cfgs, Workers(), func(i int, o RunOutcome) error {
		m := metas[i]
		if o.Err != nil {
			// Watchdog (or setup) failure: the campaign is already lost;
			// report it with the cell context attached.
			return fmt.Errorf("chaos sweep: rate %g: %w", m.rate, o.Err)
		}
		res := o.Res
		cell := ChaosCell{
			Bench:           m.bench,
			Rate:            m.rate,
			Makespan:        res.Makespan(),
			Commits:         res.Stats.Commits,
			Aborts:          res.Stats.TotalAborts(),
			Spurious:        res.Stats.Aborts[htm.AbortSpurious],
			LocksReclaimed:  res.Metrics.LocksReclaimed,
			LockTimeouts:    res.Metrics.LockTimeouts,
			LivelockEscapes: res.Metrics.LivelockEscapes,
			Faults:          res.Faults,
			VerifyErr:       res.VerifyErr,
		}
		if m.rate == 0 {
			base = cell.Makespan
		}
		if base != 0 {
			cell.Degradation = float64(cell.Makespan) / float64(base)
		}
		cells = append(cells, cell)
		if res.VerifyErr != nil && firstErr == nil {
			firstErr = fmt.Errorf("chaos sweep: %s at rate %g: verify failed: %w",
				m.bench, m.rate, res.VerifyErr)
		}
		return nil
	})
	if err != nil {
		return cells, err
	}
	return cells, firstErr
}

// FormatChaos renders the campaign as per-benchmark degradation curves.
func FormatChaos(cells []ChaosCell) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos campaign: graceful degradation under injected faults\n")
	fmt.Fprintf(&b, "%-10s %7s %6s %9s %8s %8s %6s %6s %6s %6s  %s\n",
		"Benchmark", "rate", "ok", "makespan", "commits", "aborts",
		"spur", "recl", "tmo", "esc", "degradation")
	for _, c := range cells {
		ok := "Y"
		if c.VerifyErr != nil {
			ok = "FAIL"
		}
		fmt.Fprintf(&b, "%-10s %7.3g %6s %9d %8d %8d %6d %6d %6d %6d  %s\n",
			c.Bench, c.Rate, ok, c.Makespan, c.Commits, c.Aborts,
			c.Spurious, c.LocksReclaimed, c.LockTimeouts, c.LivelockEscapes,
			degradeBar(c.Degradation))
	}
	return b.String()
}

// degradeBar draws a normalized-makespan bar (1.0 = fault-free speed).
func degradeBar(v float64) string {
	n := int(v*10 + 0.5)
	if n < 0 {
		n = 0
	}
	if n > 60 {
		n = 60
	}
	return strings.Repeat("#", n) + fmt.Sprintf(" %.2fx", v)
}
