package harness

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strconv"
)

// WriteCSV regenerates every table and figure at the given seed and
// writes one CSV file per experiment into dir (creating it), for
// downstream plotting. File names: table1.csv, table3.csv, table4.csv,
// figure7.csv, figure8.csv, lazy.csv.
func WriteCSV(dir string, seed int64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f1 := func(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

	t1, err := Table1(seed)
	if err != nil {
		return err
	}
	rows := [][]string{{"benchmark", "speedup", "irrevocable_frac", "wasted_over_useful", "la", "lp"}}
	for _, r := range t1 {
		rows = append(rows, []string{r.Bench, f1(r.S), f1(r.PctI), f1(r.WU), yn(r.LA), yn(r.LP)})
	}
	if err := writeCSVFile(filepath.Join(dir, "table1.csv"), rows); err != nil {
		return err
	}

	t3, err := Table3(seed)
	if err != nil {
		return err
	}
	rows = [][]string{{"benchmark", "ld_st", "anchors", "uops_per_txn", "anchors_per_txn", "exec_time_inc", "accuracy"}}
	for _, r := range t3 {
		rows = append(rows, []string{r.Bench, strconv.Itoa(r.LdSt), strconv.Itoa(r.Anchors),
			f1(r.UopsPerTxn), f1(r.AnchorsPerTxn), f1(r.ExecTimeInc), f1(r.Accuracy)})
	}
	if err := writeCSVFile(filepath.Join(dir, "table3.csv"), rows); err != nil {
		return err
	}

	t4, err := Table4(seed)
	if err != nil {
		return err
	}
	rows = [][]string{{"benchmark", "atomic_blocks", "tm_frac", "speedup", "aborts_per_commit", "contention"}}
	for _, r := range t4 {
		rows = append(rows, []string{r.Bench, strconv.Itoa(r.ABs), f1(r.PctTM), f1(r.S), f1(r.AbtsPerC), r.Contention})
	}
	if err := writeCSVFile(filepath.Join(dir, "table4.csv"), rows); err != nil {
		return err
	}

	f7, err := Figure7(seed)
	if err != nil {
		return err
	}
	rows = [][]string{{"benchmark", "htm", "addronly", "staggered_sw", "staggered"}}
	for _, r := range f7 {
		rows = append(rows, []string{r.Bench, f1(r.HTM), f1(r.AddrOnly), f1(r.StagSW), f1(r.StagHW)})
	}
	if err := writeCSVFile(filepath.Join(dir, "figure7.csv"), rows); err != nil {
		return err
	}

	f8, err := Figure8(seed)
	if err != nil {
		return err
	}
	rows = [][]string{{"benchmark", "htm_aborts_per_commit", "stag_aborts_per_commit", "htm_wasted_over_useful", "stag_wasted_over_useful"}}
	for _, r := range f8 {
		rows = append(rows, []string{r.Bench, f1(r.HTMAbortsPerCommit), f1(r.StagAbortsPerCommit),
			f1(r.HTMWastedOverUseful), f1(r.StagWastedOverUseful)})
	}
	if err := writeCSVFile(filepath.Join(dir, "figure8.csv"), rows); err != nil {
		return err
	}

	fl, err := FigureLazy(seed)
	if err != nil {
		return err
	}
	rows = [][]string{{"benchmark", "eager_base", "lazy_base", "stag_over_eager", "stag_over_lazy"}}
	for _, r := range fl {
		rows = append(rows, []string{r.Bench, f1(r.EagerBase), f1(r.LazyBase), f1(r.EagerStagg), f1(r.LazyStagg)})
	}
	return writeCSVFile(filepath.Join(dir, "lazy.csv"), rows)
}

func writeCSVFile(path string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		f.Close()
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return nil
}
