package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/stagger"
)

func TestRunBasic(t *testing.T) {
	res, err := Run(RunConfig{
		Benchmark: "kmeans", Mode: stagger.ModeHTM, Threads: 4, Seed: 3, TotalOps: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.VerifyErr != nil {
		t.Fatalf("verify: %v", res.VerifyErr)
	}
	if res.Stats.Commits == 0 || res.Makespan() == 0 {
		t.Fatal("empty result")
	}
	if res.NumABs == 0 || res.StaticAccesses == 0 {
		t.Fatal("missing static metadata")
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(RunConfig{Benchmark: "nope", Mode: stagger.ModeHTM, Threads: 1}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := Run(RunConfig{Benchmark: "kmeans", Mode: stagger.ModeHTM, Threads: 0}); err == nil {
		t.Error("zero threads accepted")
	}
	if _, err := Run(RunConfig{Benchmark: "kmeans", Mode: stagger.ModeHTM, Threads: 99}); err == nil {
		t.Error("threads > cores accepted")
	}
}

func TestRunCachedMemoizes(t *testing.T) {
	ClearCache()
	rc := RunConfig{Benchmark: "ssca2", Mode: stagger.ModeHTM, Threads: 2, Seed: 5, TotalOps: 100}
	a, err := RunCached(rc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCached(rc)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical configs not memoized")
	}
	rc.Naive = true
	c, err := RunCached(rc)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("distinct configs shared a cache entry")
	}
	// Overridden configs must bypass the cache.
	scfg := stagger.DefaultConfig(stagger.ModeHTM)
	rc.Naive = false
	rc.Stagger = &scfg
	d, err := RunCached(rc)
	if err != nil {
		t.Fatal(err)
	}
	if d == a {
		t.Fatal("override config hit the cache")
	}
}

func TestSpeedupPositive(t *testing.T) {
	s, res, err := Speedup(RunConfig{
		Benchmark: "ssca2", Mode: stagger.ModeHTM, Threads: 4, Seed: 2, TotalOps: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s <= 1.0 {
		t.Fatalf("4-thread ssca2 speedup = %.2f, want > 1", s)
	}
	if res.VerifyErr != nil {
		t.Fatal(res.VerifyErr)
	}
}

func TestTable2Format(t *testing.T) {
	out := Table2()
	for _, want := range []string{"L1 cache", "eager requester-wins", "12-bit PC tag"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, out)
		}
	}
}

// TestPaperExperiments exercises the full table/figure generators at the
// canonical seed. It is the repository's end-to-end regression: shapes
// (who wins, directions of effects) must match the paper.
func TestPaperExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep in -short mode")
	}
	const seed = 42

	t1, err := Table1(seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1) != 6 {
		t.Fatalf("Table 1 rows = %d, want 6", len(t1))
	}
	for _, r := range t1 {
		if r.S <= 0 {
			t.Errorf("table1 %s: speedup %f", r.Bench, r.S)
		}
		if !r.LP {
			t.Errorf("table1 %s: conflicting-PC locality should hold (paper: LP=Y everywhere)", r.Bench)
		}
	}

	t3, err := Table3(seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range t3 {
		if r.Anchors <= 0 || r.Anchors > r.LdSt {
			t.Errorf("table3 %s: anchors %d of %d", r.Bench, r.Anchors, r.LdSt)
		}
		if r.Accuracy < 0.8 {
			t.Errorf("table3 %s: accuracy %.2f below sanity floor", r.Bench, r.Accuracy)
		}
		if r.ExecTimeInc > 0.25 {
			t.Errorf("table3 %s: instrumentation overhead %.0f%% implausible", r.Bench, r.ExecTimeInc*100)
		}
	}

	t4, err := Table4(seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(t4) != 10 {
		t.Fatalf("Table 4 rows = %d, want 10", len(t4))
	}
	byName := map[string]Table4Row{}
	for _, r := range t4 {
		byName[r.Bench] = r
	}
	// Paper shape: list-hi and labyrinth are the worst scalers; vacation
	// and ssca2 scale well; high-contention rows abort much more than
	// low-contention rows.
	if byName["list-hi"].S >= byName["vacation"].S {
		t.Error("list-hi should scale far worse than vacation")
	}
	if byName["labyrinth"].S >= byName["ssca2"].S {
		t.Error("labyrinth should scale far worse than ssca2")
	}
	if byName["memcached"].AbtsPerC <= byName["genome"].AbtsPerC {
		t.Error("memcached should abort more than genome")
	}

	f7, err := Figure7(seed)
	if err != nil {
		t.Fatal(err)
	}
	wins, losses := 0, 0
	for _, r := range f7 {
		if r.StagHW >= 1.15 {
			wins++
		}
		if r.StagHW < 0.90 {
			losses++
		}
	}
	if wins < 4 {
		t.Errorf("Figure 7: only %d benchmarks improved >= 15%% under Staggered (paper: 5+)", wins)
	}
	if losses > 0 {
		t.Errorf("Figure 7: %d benchmarks slowed > 10%% under Staggered (paper: none)", losses)
	}

	f8, err := Figure8(seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f8 {
		if r.Bench == "ssca2" {
			continue // too few aborts to be meaningful
		}
		if r.StagAbortsPerCommit > r.HTMAbortsPerCommit*1.05 {
			t.Errorf("Figure 8 %s: staggered aborts %.2f exceed baseline %.2f",
				r.Bench, r.StagAbortsPerCommit, r.HTMAbortsPerCommit)
		}
	}

	cs, err := Claims(seed)
	if err != nil {
		t.Fatal(err)
	}
	if cs.HarmonicMeanImprovement <= 0.05 {
		t.Errorf("harmonic-mean improvement %.1f%% (paper: 24%%)", cs.HarmonicMeanImprovement*100)
	}
	if cs.MaxAbortReduction < 0.5 {
		t.Errorf("max abort reduction %.0f%% (paper: 89%%)", cs.MaxAbortReduction*100)
	}
	if cs.MeanAbortReduction < 0.25 {
		t.Errorf("mean abort reduction %.0f%% (paper: 64%%)", cs.MeanAbortReduction*100)
	}
}

func TestFormatters(t *testing.T) {
	if testing.Short() {
		t.Skip("uses full sweeps")
	}
	const seed = 42
	t1, _ := Table1(seed)
	if s := FormatTable1(t1); !strings.Contains(s, "list-hi") {
		t.Error("FormatTable1 lost rows")
	}
	t3, _ := Table3(seed)
	if s := FormatTable3(t3); !strings.Contains(s, "Accuracy") {
		t.Error("FormatTable3 header missing")
	}
	t4, _ := Table4(seed)
	if s := FormatTable4(t4); !strings.Contains(s, "memcached") {
		t.Error("FormatTable4 lost rows")
	}
	f7, _ := Figure7(seed)
	if s := FormatFigure7(f7); !strings.Contains(s, "Staggered") {
		t.Error("FormatFigure7 header missing")
	}
	f8, _ := Figure8(seed)
	if s := FormatFigure8(f8); !strings.Contains(s, "(a) HTM") {
		t.Error("FormatFigure8 header missing")
	}
	cs, _ := Claims(seed)
	if s := FormatClaims(cs); !strings.Contains(s, "harmonic-mean") {
		t.Error("FormatClaims content missing")
	}
}

func TestWriteCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	dir := t.TempDir()
	if err := WriteCSV(dir, 42); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"table1.csv", "table3.csv", "table4.csv",
		"figure7.csv", "figure8.csv", "lazy.csv"} {
		b, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if len(strings.Split(strings.TrimSpace(string(b)), "\n")) < 3 {
			t.Errorf("%s: too few rows", f)
		}
	}
}
