package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"
)

// entryFile mirrors the store's content addressing so the test can reach
// one cell's on-disk entry without exporting store internals.
func entryFile(dir, key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(dir, "objects", hex.EncodeToString(sum[:])+".entry")
}

// TestCrashRestartServesIdenticalBytes is the crash-restart acceptance
// case: a daemon computes a job and "crashes" (first server goes away);
// a second daemon over the same store directory must serve the same job
// from disk, byte-identically — and an entry half-written during the
// crash window must be quarantined and transparently recomputed, never
// served corrupt.
func TestCrashRestartServesIdenticalBytes(t *testing.T) {
	dir := t.TempDir()
	spec := JobSpec{Cells: []CellSpec{
		{Bench: "list-hi", Threads: 2, Seed: 1, Ops: 200},
		{Bench: "list-hi", Threads: 2, Seed: 2, Ops: 200},
		{Bench: "list-hi", Threads: 2, Seed: 3, Ops: 200},
	}}

	s1 := newT(t, Config{StoreDir: dir})
	j1, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, j1); st.State != JobDone || st.FromStore != 0 {
		t.Fatalf("first life: %+v", st)
	}
	before := make([][]byte, len(j1.payloads()))
	for i, p := range j1.payloads() {
		before[i] = append([]byte(nil), p...)
	}
	s1.Close() // first life ends; only the disk store survives

	// The crash window: cell 0's entry was torn mid-write (a truncated
	// file under the live name).
	nc, _, err := spec.Cells[0].normalized()
	if err != nil {
		t.Fatal(err)
	}
	torn := entryFile(dir, cellKey(nc))
	raw, err := os.ReadFile(torn)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(torn, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := newT(t, Config{StoreDir: dir})
	j2, err := s2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, j2)
	if st.State != JobDone {
		t.Fatalf("second life: %+v", st)
	}
	// Two intact cells come from disk; the torn one is quarantined and
	// recomputed.
	if st.FromStore != 2 {
		t.Fatalf("FromStore = %d, want 2 (torn entry must not be served)", st.FromStore)
	}
	if stats := s2.Store().Stats(); stats.Quarantined != 1 {
		t.Fatalf("store stats %+v, want exactly one quarantined entry", stats)
	}
	for i, p := range j2.payloads() {
		if !bytes.Equal(before[i], p) {
			t.Fatalf("cell %d bytes differ across restart:\n%s\nvs\n%s", i, before[i], p)
		}
	}
	// The recompute healed the torn key: a third submission is all hits.
	j3, err := s2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, j3); st.State != JobDone || st.FromStore != 3 {
		t.Fatalf("healed resubmission: %+v", st)
	}
}
