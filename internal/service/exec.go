package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/chaos"
	"repro/internal/harness"
	"repro/internal/htm"
	"repro/internal/obs"
	"repro/internal/store"
)

// CellResult is the durable per-cell payload: the deterministic metrics
// report plus the cell's own store key, encoded once and stored as-is,
// so serving a cell is always a byte copy of what was (or would be)
// written to disk. The JSON is deterministic by construction — fixed
// struct field order, and obs.Report is map-free and stable-sorted.
type CellResult struct {
	Key string `json:"key"`
	// Attempt and ChaosSeed record a transient-retry reseed: when a
	// chaos-classified failure forced a retry, the payload was computed
	// under this fault-schedule seed rather than the spec's (the workload
	// seed never changes). Zero on the common first-attempt path.
	Attempt   int           `json:"attempt,omitempty"`
	ChaosSeed int64         `json:"chaos_seed,omitempty"`
	Report    *obs.Report   `json:"report"`
	Faults    *chaos.Counts `json:"faults,omitempty"`
	VerifyErr string        `json:"verify_err,omitempty"`
	OracleErr string        `json:"oracle_err,omitempty"`
}

// ExploreResult is the durable payload of an explore job. Failures carry
// the generative (spec, sched_seed) handle rather than full pick
// sequences — that pair reproduces the schedule exactly.
type ExploreResult struct {
	Key      string           `json:"key"`
	Sched    string           `json:"sched"`
	Runs     int              `json:"runs"`
	Commits  int              `json:"commits"`
	Failures []ExploreFinding `json:"failures"`
}

// ExploreFinding is one failing schedule of an explore job.
type ExploreFinding struct {
	SchedSeed int64    `json:"sched_seed"`
	Err       string   `json:"err"`
	Picks     int      `json:"picks"`
	Minimized []uint32 `json:"minimized,omitempty"`
	Probes    int      `json:"probes,omitempty"`
}

// execute runs one attempt of a job: serve every cell the store already
// has, compute the misses through the contained parallel runner, and
// persist each fresh result before the job can report done. Cells that
// completed before a failing sibling are already durable, so a retry (or
// a resubmission after a crash) only recomputes what is actually missing.
func (s *Server) execute(ctx context.Context, j *Job, attempt int) error {
	if j.plan.kind == KindExplore {
		return s.executeExplore(ctx, j)
	}
	n := len(j.plan.keys)
	payloads := make([][]byte, n)
	var missIdx []int
	for i, key := range j.plan.keys {
		if b, ok := s.storeGet(key); ok {
			payloads[i] = b
			continue
		}
		missIdx = append(missIdx, i)
	}
	fromStore := n - len(missIdx)
	if j.recovered && attempt == 0 {
		// Resumption accounting: cells a crashed sweep had already made
		// durable and this incarnation only had to read back.
		s.resumedCells.Add(uint64(fromStore))
	}
	if len(missIdx) > 0 {
		cfgs := make([]harness.RunConfig, len(missIdx))
		for k, i := range missIdx {
			cfgs[k] = saltRetry(j.plan.cells[i], attempt)
		}
		outs := s.cfg.runAll(ctx, cfgs, s.cfg.RunWorkers)
		for k, o := range outs {
			i := missIdx[k]
			if o.Err != nil {
				return fmt.Errorf("cell %d: %w", i, s.classify(o.Err, cfgs[k]))
			}
			b, err := encodeCell(j.plan.keys[i], attempt, cfgs[k], o.Res)
			if err != nil {
				return err
			}
			s.storePut(j.plan.keys[i], b)
			payloads[i] = b
		}
	}
	j.setResults(payloads, fromStore)
	return nil
}

// executeExplore runs (or serves) a schedule-exploration campaign.
// Campaign failures are deterministic in the spec, so they are never
// retried; only the durable store decides compute vs serve.
func (s *Server) executeExplore(ctx context.Context, j *Job) error {
	key := j.plan.keys[0]
	if b, ok := s.storeGet(key); ok {
		j.setResults([][]byte{b}, 1)
		return nil
	}
	ec := j.plan.explore
	ec.Ctx = ctx
	rep, err := harness.Explore(ec)
	if err != nil {
		return err
	}
	er := ExploreResult{
		Key:      key,
		Sched:    rep.Config.Spec,
		Runs:     rep.Runs,
		Commits:  rep.Commits,
		Failures: make([]ExploreFinding, 0, len(rep.Failures)),
	}
	if er.Sched == "" {
		er.Sched = "pct:3"
	}
	for _, f := range rep.Failures {
		er.Failures = append(er.Failures, ExploreFinding{
			SchedSeed: f.SchedSeed,
			Err:       f.Err.Error(),
			Picks:     len(f.Picks),
			Minimized: f.Minimized,
			Probes:    f.Probes,
		})
	}
	b, err := json.MarshalIndent(&er, "", "  ")
	if err != nil {
		return fmt.Errorf("encode explore result: %w", err)
	}
	b = append(b, '\n')
	s.storePut(key, b)
	j.setResults([][]byte{b}, 0)
	return nil
}

// classify wraps chaos-classified failures with ErrTransient: a virtual
// watchdog trip on a fault-injected cell implicates the injected fault
// schedule, not the workload, so a reseeded retry is meaningful. Every
// other failure — validation, verification, oracle, panic — is a
// deterministic function of the config and is reported as permanent.
// A contained panic is also counted here, whatever cell it came from.
func (s *Server) classify(err error, rc harness.RunConfig) error {
	var pe *harness.PanicError
	if errors.As(err, &pe) {
		s.panicCnt.Add(1)
		return err
	}
	var we *htm.WatchdogError
	if rc.Chaos != nil && errors.As(err, &we) {
		return fmt.Errorf("%w: %w", ErrTransient, err)
	}
	return err
}

// saltRetry reseeds the fault schedule of a chaos cell on retry attempts
// (the workload seed is untouched, so the experiment stays the same
// program under a fresh fault environment). Fault-free cells are
// returned unchanged: their failures are deterministic and the retry
// loop never reaches them anyway.
func saltRetry(rc harness.RunConfig, attempt int) harness.RunConfig {
	if attempt == 0 || rc.Chaos == nil {
		return rc
	}
	cc := *rc.Chaos
	cc.Seed += int64(attempt) * 1_000_003
	rc.Chaos = &cc
	return rc
}

// encodeCell renders the durable payload for one freshly computed cell.
func encodeCell(key string, attempt int, rc harness.RunConfig, res *harness.Result) ([]byte, error) {
	cr := CellResult{Key: key, Report: obs.Snapshot(res)}
	if rc.Chaos != nil {
		cr.ChaosSeed = rc.Chaos.Seed
		f := res.Faults
		cr.Faults = &f
		if attempt > 0 {
			cr.Attempt = attempt
		}
	}
	if res.VerifyErr != nil {
		cr.VerifyErr = res.VerifyErr.Error()
	}
	if res.OracleErr != nil {
		cr.OracleErr = res.OracleErr.Error()
	}
	b, err := json.MarshalIndent(&cr, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("encode cell result: %w", err)
	}
	return append(b, '\n'), nil
}

// storeGet serves a key from the durable store if it verifies. A corrupt
// entry has already been quarantined by the store; it surfaces here as a
// plain miss (logged), so the caller transparently recomputes.
func (s *Server) storeGet(key string) ([]byte, bool) {
	if s.store == nil {
		return nil, false
	}
	b, err := s.store.Get(key)
	if err != nil {
		var ce *store.CorruptError
		if errors.As(err, &ce) {
			s.cfg.Logf("staggerd: %v", ce)
		} else if !errors.Is(err, store.ErrNotFound) {
			s.cfg.Logf("staggerd: store get: %v", err)
		}
		return nil, false
	}
	return b, true
}

// storePut persists a payload; a store write failure is logged and
// tolerated (the result is still served from memory — durability
// degrades, correctness does not).
func (s *Server) storePut(key string, payload []byte) {
	if s.store == nil {
		return
	}
	if err := s.store.Put(key, payload); err != nil {
		s.cfg.Logf("staggerd: store put: %v", err)
	}
}
