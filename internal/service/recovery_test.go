package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/journal"
	"repro/internal/testutil"
	"repro/internal/vfs"
)

// seedJournal authors a journal the way a SIGKILLed daemon would have
// left it: records appended, nothing compacted, no clean-shutdown
// truncation. It returns the journal path.
func seedJournal(t *testing.T, dir string, recs ...journal.Record) string {
	t.Helper()
	path := filepath.Join(dir, "journal", "jobs.wal")
	j, _, err := journal.Open(vfs.OS, path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func mustJSON(t *testing.T, v any) json.RawMessage {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// A job the journal shows accepted (and even running) when the process
// died must be re-enqueued under its original ID and driven to done.
func TestBootReplayReenqueuesUnfinishedJob(t *testing.T) {
	baseline := testutil.GoroutineBaseline()
	dir := t.TempDir()
	spec := tinySpec(11)
	seedJournal(t, dir,
		journal.Record{Type: journal.RecAccepted, Job: "job-000003", Spec: mustJSON(t, spec)},
		journal.Record{Type: journal.RecRunning, Job: "job-000003"},
	)

	s := newT(t, Config{StoreDir: dir})
	j, ok := s.Job("job-000003")
	if !ok {
		t.Fatal("journaled job not rebuilt at boot")
	}
	st := waitJob(t, j)
	if st.State != JobDone {
		t.Fatalf("recovered job ended %+v", st)
	}
	if !st.Recovered {
		t.Fatal("status does not mark the job recovered")
	}
	m := s.Metrics()
	if m.Recovery == nil || m.Recovery.ReplayedRecords != 2 || m.Recovery.RequeuedJobs != 1 {
		t.Fatalf("recovery metrics = %+v, want 2 replayed / 1 requeued", m.Recovery)
	}
	// The restored ID counter must not reissue the recovered ID.
	j2, err := s.Submit(tinySpec(12))
	if err != nil {
		t.Fatal(err)
	}
	if j2.ID() <= "job-000003" {
		t.Fatalf("fresh job got ID %s, want one past the recovered job", j2.ID())
	}
	s.Close()
	testutil.WaitNoGoroutineLeaks(t, baseline)
}

// Jobs the journal shows terminal must NOT come back, and replay must
// fold duplicate records (a crash mid-compaction can leave them) into
// one job, never two.
func TestBootReplaySkipsTerminalAndDuplicates(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec(21)
	seedJournal(t, dir,
		journal.Record{Type: journal.RecAccepted, Job: "job-000001", Spec: mustJSON(t, spec)},
		journal.Record{Type: journal.RecDone, Job: "job-000001"},
		journal.Record{Type: journal.RecAccepted, Job: "job-000002", Spec: mustJSON(t, spec)},
		journal.Record{Type: journal.RecAccepted, Job: "job-000002", Spec: mustJSON(t, spec)},
		journal.Record{Type: journal.RecAccepted, Job: "job-000004", Spec: mustJSON(t, spec)},
		journal.Record{Type: journal.RecCanceled, Job: "job-000004"},
	)
	s := newT(t, Config{StoreDir: dir})
	if _, ok := s.Job("job-000001"); ok {
		t.Fatal("done job resurrected")
	}
	if _, ok := s.Job("job-000004"); ok {
		t.Fatal("canceled job resurrected")
	}
	j, ok := s.Job("job-000002")
	if !ok {
		t.Fatal("live job not rebuilt")
	}
	if n := len(s.Jobs()); n != 1 {
		t.Fatalf("%d jobs rebuilt, want 1 (duplicates folded)", n)
	}
	waitJob(t, j)
	if m := s.Metrics(); m.Recovery.RequeuedJobs != 1 {
		t.Fatalf("recovery metrics = %+v", m.Recovery)
	}
}

// The tentpole acceptance case: a sweep interrupted mid-flight resumes
// from the content-addressed store, recomputing only the missing cells,
// and the final payloads are byte-identical to an uninterrupted run.
func TestResumedSweepRecomputesOnlyMissingCells(t *testing.T) {
	sweep := JobSpec{Cells: []CellSpec{
		{Bench: "list-hi", Threads: 2, Seed: 1, Ops: 200},
		{Bench: "list-hi", Threads: 2, Seed: 2, Ops: 200},
		{Bench: "list-hi", Threads: 2, Seed: 3, Ops: 200},
	}}

	// Reference: an uninterrupted run in a throwaway life.
	ref := newT(t, Config{StoreDir: t.TempDir()})
	rj, err := ref.Submit(sweep)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, rj); st.State != JobDone {
		t.Fatalf("reference run: %+v", st)
	}
	want := rj.payloads()

	// First life: the same sweep completes (filling the store), then the
	// journal is rewound to look as if the daemon died mid-job, and one
	// cell's entry is deleted as if it never got persisted.
	dir := t.TempDir()
	s1 := newT(t, Config{StoreDir: dir})
	j1, err := s1.Submit(sweep)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, j1); st.State != JobDone {
		t.Fatalf("first life: %+v", st)
	}
	s1.Close()
	nc, _, err := sweep.Cells[2].normalized()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(entryFile(dir, cellKey(nc))); err != nil {
		t.Fatal(err)
	}
	// Clean shutdown compacted the journal; re-seed it with the crash
	// shape (accepted + running, no terminal record).
	seedJournal(t, dir,
		journal.Record{Type: journal.RecAccepted, Job: "job-000009", Spec: mustJSON(t, sweep)},
		journal.Record{Type: journal.RecRunning, Job: "job-000009"},
	)

	// Second life: the job resumes, serves cells 0-1 from the store, and
	// recomputes only cell 2.
	s2 := newT(t, Config{StoreDir: dir})
	j2, ok := s2.Job("job-000009")
	if !ok {
		t.Fatal("crashed sweep not rebuilt")
	}
	st := waitJob(t, j2)
	if st.State != JobDone {
		t.Fatalf("resumed sweep: %+v", st)
	}
	if st.FromStore != 2 || st.Computed != 1 {
		t.Fatalf("resume accounting: FromStore=%d Computed=%d, want 2/1", st.FromStore, st.Computed)
	}
	got := j2.payloads()
	if len(got) != len(want) {
		t.Fatalf("payload count %d != %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("cell %d differs from the uninterrupted reference run", i)
		}
	}
	if m := s2.Metrics(); m.Recovery.ResumedCells != 2 {
		t.Fatalf("ResumedCells = %d, want 2 (%+v)", m.Recovery.ResumedCells, m.Recovery)
	}
}

// A torn journal tail (the crash hit mid-append) is quarantined at boot;
// the intact prefix still recovers and the journal keeps working.
func TestBootQuarantinesTornJournalTail(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec(31)
	path := seedJournal(t, dir,
		journal.Record{Type: journal.RecAccepted, Job: "job-000001", Spec: mustJSON(t, spec)},
	)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x13, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s := newT(t, Config{StoreDir: dir})
	j, ok := s.Job("job-000001")
	if !ok {
		t.Fatal("intact prefix not recovered past the torn tail")
	}
	waitJob(t, j)
	m := s.Metrics()
	if m.Recovery.QuarantinedTailBytes != 6 {
		t.Fatalf("QuarantinedTailBytes = %d, want 6", m.Recovery.QuarantinedTailBytes)
	}
	if _, err := s.Submit(tinySpec(32)); err != nil {
		t.Fatalf("submit after tail repair: %v", err)
	}
	ents, _ := os.ReadDir(filepath.Dir(path))
	var sidecars int
	for _, e := range ents {
		if strings.Contains(e.Name(), ".quarantine.") {
			sidecars++
		}
	}
	if sidecars != 1 {
		t.Fatalf("%d quarantine sidecars, want 1", sidecars)
	}
}

// Idempotency keys: a duplicate submit returns the existing job, a
// conflicting reuse is rejected, and the index survives a crash so a
// client resubmitting across the restart still deduplicates.
func TestIdempotencyKeyDedupes(t *testing.T) {
	dir := t.TempDir()
	s := newT(t, Config{StoreDir: dir})
	spec := tinySpec(41)
	spec.IdempotencyKey = "sweep-nightly-41"
	j1, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if j1.ID() != j2.ID() {
		t.Fatalf("duplicate submit created %s and %s", j1.ID(), j2.ID())
	}
	other := tinySpec(42)
	other.IdempotencyKey = "sweep-nightly-41"
	if _, err := s.Submit(other); !errors.Is(err, ErrIdemConflict) {
		t.Fatalf("conflicting reuse = %v, want ErrIdemConflict", err)
	}
	waitJob(t, j1)
}

func TestIdempotencyKeySurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec(51)
	spec.IdempotencyKey = "resumable-51"
	seedJournal(t, dir,
		journal.Record{Type: journal.RecAccepted, Job: "job-000006", Idem: "resumable-51", Spec: mustJSON(t, spec)},
	)
	s := newT(t, Config{StoreDir: dir})
	// The client never heard back and blindly resubmits: it must get the
	// recovered job, not a duplicate.
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if j.ID() != "job-000006" {
		t.Fatalf("resubmit created %s, want the recovered job-000006", j.ID())
	}
	if st := waitJob(t, j); st.State != JobDone || st.Idem != "resumable-51" {
		t.Fatalf("recovered idempotent job: %+v", st)
	}
}

// When the journal cannot make an accepted record durable, Submit must
// refuse the job (503 over HTTP) rather than accept work it could lose.
func TestSubmitRejectedWhenJournalFails(t *testing.T) {
	fp, err := chaos.ParseFailpoints("sync:jobs.wal=error@2", 1)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	s := newT(t, Config{StoreDir: dir, FS: &vfs.FaultFS{Base: vfs.OS, FP: fp}})
	// Sync hit 1 was the boot-time magic header; hit 2 is this submit's
	// accepted record.
	_, err = s.Submit(tinySpec(61))
	if !errors.Is(err, ErrJournal) {
		t.Fatalf("submit with failing journal = %v, want ErrJournal", err)
	}
	// The journal wedges until restart; later submits are refused too.
	_, err = s.Submit(tinySpec(62))
	if !errors.Is(err, ErrJournal) {
		t.Fatalf("submit on wedged journal = %v, want ErrJournal", err)
	}
	rec := httptest.NewRecorder()
	body, _ := json.Marshal(tinySpec(63))
	s.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/jobs", bytes.NewReader(body)))
	if rec.Code != 503 || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("HTTP submit = %d (Retry-After %q), want 503 with Retry-After",
			rec.Code, rec.Header().Get("Retry-After"))
	}
	if m := s.Metrics(); m.Recovery.JournalErrors == 0 || m.Accepted != 0 {
		t.Fatalf("metrics after journal failure: %+v", m)
	}
}

// Clean shutdown compacts the journal to just its header, so the next
// boot replays nothing.
func TestCleanShutdownCompactsJournal(t *testing.T) {
	dir := t.TempDir()
	s := newT(t, Config{StoreDir: dir})
	j, err := s.Submit(tinySpec(71))
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	s.Close()

	s2 := newT(t, Config{StoreDir: dir})
	m := s2.Metrics()
	if m.Recovery.ReplayedRecords != 0 || m.Recovery.RequeuedJobs != 0 {
		t.Fatalf("boot after clean shutdown replayed %+v, want nothing", m.Recovery)
	}
	if len(s2.Jobs()) != 0 {
		t.Fatal("jobs resurrected after clean shutdown")
	}
}

// Journal traffic is visible in /metrics: appends per lifecycle record,
// compactions on drain.
func TestMetricsExposeJournalStats(t *testing.T) {
	dir := t.TempDir()
	s := newT(t, Config{StoreDir: dir})
	j, err := s.Submit(tinySpec(81))
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	m := s.Metrics()
	if m.Journal == nil || m.Journal.Appends < 3 {
		t.Fatalf("journal stats = %+v, want >= 3 appends (accepted, running, done)", m.Journal)
	}
	var wire struct {
		Recovery *RecoveryStats `json:"recovery"`
		Journal  *journal.Stats `json:"journal"`
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &wire); err != nil {
		t.Fatal(err)
	}
	if wire.Recovery == nil || wire.Journal == nil {
		t.Fatalf("/metrics missing recovery/journal sections: %s", rec.Body.String())
	}
}

// Memory-only servers (no StoreDir, no JournalPath) run without a
// journal: no recovery section, submits never touch a disk.
func TestMemoryOnlyServerHasNoJournal(t *testing.T) {
	s := newT(t, Config{})
	j, err := s.Submit(tinySpec(91))
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	if m := s.Metrics(); m.Recovery != nil || m.Journal != nil {
		t.Fatalf("memory-only metrics grew durability sections: %+v", m)
	}
}
