package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/htm"
)

// tinySpec is a cell cheap enough for unit tests (a few ms of simulation).
func tinySpec(seed int64) JobSpec {
	return JobSpec{Cells: []CellSpec{{Bench: "list-hi", Mode: "staggered", Threads: 2, Seed: seed, Ops: 200}}}
}

func newT(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func waitJob(t *testing.T, j *Job) JobStatus {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s did not finish", j.ID())
	}
	return j.Status()
}

// waitState polls until the job reaches the given state.
func waitState(t *testing.T, j *Job, state string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for j.Status().State != state {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", j.ID(), j.Status().State, state)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newT(t, Config{})
	for _, bad := range []JobSpec{
		{Cells: []CellSpec{{}}},                                              // missing bench
		{Cells: []CellSpec{{Bench: "nope"}}},                                 // unknown bench
		{Cells: []CellSpec{{Bench: "list-hi", Mode: "warp"}}},                // unknown mode
		{Cells: []CellSpec{{Bench: "list-hi", ChaosRate: 2}}},                // rate outside [0,1]
		{Cells: []CellSpec{{Bench: "list-hi", Backend: "bogus"}}},            // unknown backend
		{Cells: []CellSpec{{Bench: "list-hi", Capacity: -1}}},                // negative capacity
		{Cells: []CellSpec{{Bench: "list-hi", Capacity: 8}}},                 // capacity without the limited backend
		{Cells: []CellSpec{{Bench: "list-hi", Backend: "occ", Capacity: 8}}}, // capacity on a backend that has none
		{Kind: KindExplore},                                                  // explore without spec
		{Kind: KindRun, Cells: []CellSpec{{Bench: "list-hi"}, {Bench: "list-hi"}}},
		{Kind: KindSweep, Seeds: make([]int64, 600)}, // exceeds MaxCells
	} {
		if _, err := s.Submit(bad); err == nil {
			t.Errorf("Submit(%+v) accepted, want error", bad)
		}
	}
}

// TestBackendSweepAxis submits one sweep over the Backends axis and
// checks the expansion: one cell per backend, each with its own durable
// key (the backend name is part of the normalized CellSpec), and every
// cell completes with a clean verdict.
func TestBackendSweepAxis(t *testing.T) {
	s := newT(t, Config{StoreDir: t.TempDir()})
	spec := JobSpec{
		Benchmarks: []string{"list-hi"},
		Backends:   []string{"htm", "occ"},
		Threads:    []int{2},
		Ops:        200,
	}
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(j.plan.keys); got != 2 {
		t.Fatalf("sweep expanded to %d cells, want 2", got)
	}
	if j.plan.keys[0] == j.plan.keys[1] {
		t.Fatalf("backends htm and occ share a store key: %s", j.plan.keys[0])
	}
	st := waitJob(t, j)
	if st.State != JobDone {
		t.Fatalf("job ended %s (%s), want done", st.State, st.Error)
	}
	for i, raw := range j.payloads() {
		var cr CellResult
		if err := json.Unmarshal(raw, &cr); err != nil {
			t.Fatalf("cell %d payload: %v", i, err)
		}
		if cr.VerifyErr != "" || cr.OracleErr != "" {
			t.Errorf("cell %d (%s): verify=%q oracle=%q", i, j.plan.keys[i], cr.VerifyErr, cr.OracleErr)
		}
	}
}

func TestRunJobEndToEndOverHTTP(t *testing.T) {
	s := newT(t, Config{StoreDir: t.TempDir()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(tinySpec(7))
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	j, ok := s.Job(st.ID)
	if !ok {
		t.Fatalf("job %s not registered", st.ID)
	}
	if got := waitJob(t, j); got.State != JobDone {
		t.Fatalf("job ended %s (%s)", got.State, got.Error)
	}

	cell, err := http.Get(ts.URL + "/jobs/" + st.ID + "/cells/0")
	if err != nil {
		t.Fatal(err)
	}
	defer cell.Body.Close()
	var cr CellResult
	if err := json.NewDecoder(cell.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if cr.Report == nil || cr.Report.Benchmark != "list-hi" || cr.Report.Commits == 0 {
		t.Fatalf("cell payload %+v lacks a real report", cr)
	}
	if !strings.HasPrefix(cr.Key, fmt.Sprintf("v%d|cell|", harness.CacheSchema)) {
		t.Fatalf("key %q not schema-tagged", cr.Key)
	}

	res, err := http.Get(ts.URL + "/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var cells []CellResult
	if err := json.NewDecoder(res.Body).Decode(&cells); err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Fatalf("result has %d cells, want 1", len(cells))
	}
}

func TestByteIdenticalAcrossClients(t *testing.T) {
	s := newT(t, Config{StoreDir: t.TempDir()})
	j1, err := s.Submit(tinySpec(9))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, j1); st.State != JobDone || st.FromStore != 0 {
		t.Fatalf("first job: %+v", st)
	}
	j2, err := s.Submit(tinySpec(9))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, j2); st.State != JobDone || st.FromStore != 1 {
		t.Fatalf("second job should be served from the store: %+v", st)
	}
	if !bytes.Equal(j1.payloads()[0], j2.payloads()[0]) {
		t.Fatal("two clients saw different bytes for one cell")
	}
}

// blockingSeam builds a runAll seam that parks every call until release
// is closed (or the ctx dies), so tests can hold workers busy.
func blockingSeam(release <-chan struct{}) func(context.Context, []harness.RunConfig, int) []harness.RunOutcome {
	return func(ctx context.Context, cfgs []harness.RunConfig, _ int) []harness.RunOutcome {
		out := make([]harness.RunOutcome, len(cfgs))
		select {
		case <-release:
		case <-ctx.Done():
			for i := range out {
				out[i].Err = ctx.Err()
			}
			return out
		}
		for i := range out {
			out[i].Res = &harness.Result{}
		}
		return out
	}
}

func TestAdmissionShedsWhenFull(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s := newT(t, Config{JobWorkers: 1, QueueDepth: 2, Grace: 100 * time.Millisecond, runAll: blockingSeam(release)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy the single worker, then fill every queue slot.
	j0, err := s.Submit(tinySpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j0, JobRunning)
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(tinySpec(int64(i + 2))); err != nil {
			t.Fatalf("queue slot %d: %v", i, err)
		}
	}
	// Worker busy + queue full: the next submission must shed.
	if _, err := s.Submit(tinySpec(40)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("full queue Submit = %v, want ErrQueueFull", err)
	}

	body, _ := json.Marshal(tinySpec(50))
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded submit = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if m := s.Metrics(); m.ShedFull == 0 {
		t.Fatalf("metrics %+v did not count shed load", m)
	}
}

func TestTransientFailureRetriedWithBackoff(t *testing.T) {
	calls := 0
	seam := func(ctx context.Context, cfgs []harness.RunConfig, _ int) []harness.RunOutcome {
		calls++
		out := make([]harness.RunOutcome, len(cfgs))
		if calls == 1 {
			out[0].Err = fmt.Errorf("%w: injected", ErrTransient)
			return out
		}
		for i := range out {
			out[i].Res = &harness.Result{}
		}
		return out
	}
	s := newT(t, Config{MaxRetries: 2, RetryBase: time.Millisecond, RetryCap: 4 * time.Millisecond, runAll: seam})
	j, err := s.Submit(tinySpec(1))
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, j)
	if st.State != JobDone || st.Retries != 1 || calls != 2 {
		t.Fatalf("state %s retries %d calls %d, want done/1/2", st.State, st.Retries, calls)
	}
	if m := s.Metrics(); m.Retries != 1 {
		t.Fatalf("metrics %+v, want Retries=1", m)
	}
}

func TestPermanentFailureIsNotRetried(t *testing.T) {
	calls := 0
	seam := func(ctx context.Context, cfgs []harness.RunConfig, _ int) []harness.RunOutcome {
		calls++
		out := make([]harness.RunOutcome, len(cfgs))
		out[0].Err = errors.New("deterministic failure")
		return out
	}
	s := newT(t, Config{MaxRetries: 3, RetryBase: time.Millisecond, runAll: seam})
	j, err := s.Submit(tinySpec(1))
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, j)
	if st.State != JobFailed || calls != 1 {
		t.Fatalf("state %s after %d calls, want failed after exactly 1", st.State, calls)
	}
}

// TestChaosWatchdogClassifiedTransient pins the chaos classification
// rule: the same watchdog trip is transient on a fault-injected cell and
// permanent on a clean one.
func TestChaosWatchdogClassifiedTransient(t *testing.T) {
	s := newT(t, Config{})
	we := fmt.Errorf("harness: list-hi: %w", &htm.WatchdogError{Core: 1, Cycles: 9, Limit: 8})
	chaosCell := tinySpec(1).Cells[0]
	chaosCell.ChaosRate = 0.01
	nc, m, err := chaosCell.normalized()
	if err != nil {
		t.Fatal(err)
	}
	if got := s.classify(we, runConfig(nc, m)); !errors.Is(got, ErrTransient) {
		t.Fatalf("chaos watchdog trip classified %v, want transient", got)
	}
	clean, m2, _ := tinySpec(1).Cells[0].normalized()
	if got := s.classify(we, runConfig(clean, m2)); errors.Is(got, ErrTransient) {
		t.Fatal("fault-free watchdog trip classified transient")
	}
}

// TestRetrySaltReseedsOnlyChaos: the retry salt must change the fault
// schedule and nothing else.
func TestRetrySaltReseedsOnlyChaos(t *testing.T) {
	cell := CellSpec{Bench: "list-hi", ChaosRate: 0.01, Seed: 5}
	nc, m, err := cell.normalized()
	if err != nil {
		t.Fatal(err)
	}
	rc := runConfig(nc, m)
	salted := saltRetry(rc, 2)
	if salted.Chaos.Seed == rc.Chaos.Seed {
		t.Fatal("retry did not reseed the fault schedule")
	}
	if salted.Seed != rc.Seed || salted.Benchmark != rc.Benchmark {
		t.Fatal("retry changed the workload, not just the faults")
	}
	if clean := saltRetry(harness.RunConfig{Benchmark: "x"}, 3); clean.Chaos != nil {
		t.Fatal("salt invented a chaos config")
	}
}

func TestJobDeadlineFailsJob(t *testing.T) {
	s := newT(t, Config{runAll: blockingSeam(nil)}) // blocks until ctx dies
	spec := tinySpec(1)
	spec.TimeoutMS = 50
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, j)
	if st.State != JobFailed || !strings.Contains(st.Error, "deadline") {
		t.Fatalf("deadline job ended %s (%q), want failed with deadline", st.State, st.Error)
	}
}

func TestCancelRunningJob(t *testing.T) {
	s := newT(t, Config{runAll: blockingSeam(nil)})
	j, err := s.Submit(tinySpec(1))
	if err != nil {
		t.Fatal(err)
	}
	// Wait until a worker picks it up, then cancel.
	deadline := time.Now().Add(5 * time.Second)
	for j.Status().State == JobQueued {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.CancelJob(j.ID()); err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, j); st.State != JobCanceled {
		t.Fatalf("cancelled job ended %s", st.State)
	}
}

func TestCancelQueuedJobNeverRuns(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s := newT(t, Config{JobWorkers: 1, QueueDepth: 4, runAll: blockingSeam(release)})
	if _, err := s.Submit(tinySpec(1)); err != nil { // occupies the worker
		t.Fatal(err)
	}
	j, err := s.Submit(tinySpec(2)) // stays queued
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CancelJob(j.ID()); err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, j); st.State != JobCanceled {
		t.Fatalf("queued-cancel ended %s", st.State)
	}
}

// TestResultEndpointStates walks the non-done answers of the result API.
func TestResultEndpointStates(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s := newT(t, Config{JobWorkers: 1, runAll: blockingSeam(release)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/jobs/job-999999/result"); code != http.StatusNotFound {
		t.Fatalf("unknown job result = %d, want 404", code)
	}
	j, err := s.Submit(tinySpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if code := get("/jobs/" + j.ID() + "/result"); code != http.StatusAccepted {
		t.Fatalf("pending result = %d, want 202", code)
	}
}

func TestExploreJobRunsAndIsDurable(t *testing.T) {
	s := newT(t, Config{StoreDir: t.TempDir()})
	spec := JobSpec{Explore: &ExploreSpec{
		Cell: CellSpec{Bench: "list-hi", Threads: 2, Ops: 120},
		Runs: 3,
	}}
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, j)
	if st.State != JobDone || st.Kind != KindExplore {
		t.Fatalf("explore job: %+v", st)
	}
	var er ExploreResult
	if err := json.Unmarshal(j.payloads()[0], &er); err != nil {
		t.Fatal(err)
	}
	if er.Runs != 3 || er.Commits == 0 {
		t.Fatalf("explore result %+v, want 3 runs with commits", er)
	}
	// Resubmission is served from the store, byte-identically.
	j2, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, j2); st.FromStore != 1 {
		t.Fatalf("explore rerun not served from store: %+v", st)
	}
	if !bytes.Equal(j.payloads()[0], j2.payloads()[0]) {
		t.Fatal("explore payload differed across submissions")
	}
}
