package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/harness"
	"repro/internal/obs"
)

// Handler returns the service's HTTP surface:
//
//	GET    /healthz              liveness (200 while the process runs)
//	GET    /readyz               readiness (503 once drain begins)
//	GET    /metrics              service + store counters, JSON
//	POST   /jobs                 submit a JobSpec -> 202 {id}
//	GET    /jobs                 list job statuses
//	GET    /jobs/{id}            one job's status
//	DELETE /jobs/{id}            cancel a job
//	GET    /jobs/{id}/result     all cell payloads of a done job
//	GET    /jobs/{id}/cells/{n}  one cell payload, exact stored bytes
//	GET    /jobs/{id}/trace      Perfetto trace of one cell (?cell=n)
//	POST   /drain                begin graceful drain
//
// Overload answers are load-shedding by design: 429 (queue full) and
// 503 (draining) both carry Retry-After instead of queuing the request.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.Ready() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Metrics())
	})
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Jobs())
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.Job(r.PathValue("id"))
		if !ok {
			writeErr(w, http.StatusNotFound, "no such job")
			return
		}
		writeJSON(w, http.StatusOK, j.Status())
	})
	mux.HandleFunc("DELETE /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.CancelJob(r.PathValue("id")); err != nil {
			writeErr(w, http.StatusNotFound, err.Error())
			return
		}
		w.WriteHeader(http.StatusAccepted)
	})
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /jobs/{id}/cells/{n}", s.handleCell)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("POST /drain", func(w http.ResponseWriter, r *http.Request) {
		s.BeginDrain()
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintln(w, "draining")
	})
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, "bad job spec: "+err.Error())
		return
	}
	j, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "5")
		writeErr(w, http.StatusServiceUnavailable, err.Error())
		return
	case errors.Is(err, ErrJournal):
		// The journal wedges until a restart repairs it; tell the client to
		// come back once the supervisor has cycled the daemon.
		w.Header().Set("Retry-After", "5")
		writeErr(w, http.StatusServiceUnavailable, err.Error())
		return
	case errors.Is(err, ErrIdemConflict):
		writeErr(w, http.StatusConflict, err.Error())
		return
	case err != nil:
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	st := j.Status()
	w.Header().Set("Location", "/jobs/"+j.ID())
	writeJSON(w, http.StatusAccepted, st)
}

// jobForRead resolves a job and maps its state to an HTTP answer for the
// result-bearing endpoints: 404 unknown, 202+Retry-After while pending,
// 410 canceled, 500 failed, nil error when done.
func (s *Server) jobForRead(w http.ResponseWriter, id string) (*Job, bool) {
	j, ok := s.Job(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job")
		return nil, false
	}
	st := j.Status()
	switch st.State {
	case JobDone:
		return j, true
	case JobQueued, JobRunning:
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusAccepted, "job "+st.State)
	case JobCanceled:
		writeErr(w, http.StatusGone, "job canceled: "+st.Error)
	default:
		writeErr(w, http.StatusInternalServerError, "job failed: "+st.Error)
	}
	return nil, false
}

// handleResult streams every cell payload of a done job as a JSON array.
// The payloads are written verbatim — the exact bytes the durable store
// holds — so the response is byte-identical across daemons and restarts.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobForRead(w, r.PathValue("id"))
	if !ok {
		return
	}
	payloads := j.payloads()
	w.Header().Set("Content-Type", "application/json")
	w.Write([]byte("[\n"))
	for i, p := range payloads {
		if i > 0 {
			w.Write([]byte(",\n"))
		}
		w.Write(trimTrailingNewline(p))
	}
	w.Write([]byte("\n]\n"))
}

func (s *Server) handleCell(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobForRead(w, r.PathValue("id"))
	if !ok {
		return
	}
	payloads := j.payloads()
	n, err := strconv.Atoi(r.PathValue("n"))
	if err != nil || n < 0 || n >= len(payloads) {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("cell index outside [0,%d)", len(payloads)))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(payloads[n])
}

// handleTrace serves a Perfetto (Chrome trace-event) timeline for one
// cell of a done job by deterministically re-running it with extended
// tracing enabled. Traces are large and rarely wanted, so they are
// computed on demand and not stored; determinism makes the re-run
// faithful to the recorded result (chaos cells that needed a reseeded
// retry are the documented exception — the trace shows the spec's own
// fault schedule).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobForRead(w, r.PathValue("id"))
	if !ok {
		return
	}
	if j.plan.kind == KindExplore {
		writeErr(w, http.StatusBadRequest, "explore jobs have no cell trace; rerun the failure via its sched_seed")
		return
	}
	n := 0
	if v := r.URL.Query().Get("cell"); v != "" {
		var err error
		if n, err = strconv.Atoi(v); err != nil {
			writeErr(w, http.StatusBadRequest, "bad cell index")
			return
		}
	}
	if n < 0 || n >= len(j.plan.cells) {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("cell index outside [0,%d)", len(j.plan.cells)))
		return
	}
	rc := j.plan.cells[n]
	rc.TraceN = -1
	rc.ExtTrace = true
	res, err := harness.RunCtx(r.Context(), rc)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "trace re-run: "+err.Error())
		return
	}
	meta := obs.TraceMeta{
		Benchmark: rc.Benchmark,
		Mode:      rc.Mode.String(),
		Threads:   rc.Threads,
		Seed:      rc.Seed,
		Sched:     rc.Sched,
		SchedSeed: rc.SchedSeed,
		Extra: map[string]string{
			"job":    j.ID(),
			"cell":   strconv.Itoa(n),
			"source": "staggerd deterministic re-run",
		},
	}
	w.Header().Set("Content-Type", "application/json")
	if err := obs.WriteTrace(w, meta, res.Trace); err != nil {
		s.cfg.Logf("staggerd: trace write: %v", err)
	}
}

func trimTrailingNewline(b []byte) []byte {
	for len(b) > 0 && b[len(b)-1] == '\n' {
		b = b[:len(b)-1]
	}
	return b
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
