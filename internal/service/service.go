// Package service is the crash-safe simulation service behind cmd/staggerd:
// an HTTP+JSON control plane over the deterministic harness. It accepts
// run/sweep/chaos/explore jobs, executes them on a bounded worker pool
// built on harness.RunAllContained, and serves every result from a
// durable content-addressed store (internal/store), so identical
// (config, seed) cells are byte-identical across clients and restarts.
//
// The robustness contract, in order of the failure-mode table in
// DESIGN.md:
//
//   - overload: admission is a bounded queue; a full queue sheds the
//     request with 429 + Retry-After instead of letting latency and
//     memory grow without bound, and a draining server answers 503;
//   - workload panics: contained per cell by harness.RunAllContained,
//     so a poisoned job fails alone while its siblings and the daemon
//     keep running;
//   - runaway jobs: a per-job wall-clock deadline sits above the
//     simulator's own virtual-time watchdog; either bound abandons the
//     job promptly (the virtual one deterministically, the wall-clock
//     one via context cancellation through harness.RunCtx);
//   - transient faults: a job failing on a chaos-classified error (a
//     watchdog trip on a fault-injected cell implicates the injected
//     fault schedule, not the workload) is retried with capped
//     exponential backoff and a reseeded fault schedule; deterministic
//     failures are never retried, they would only repeat;
//   - crashes: completed cells are durable before the job reports done
//     (write-temp-fsync-rename), so a restarted daemon re-serves them
//     byte-identically and a half-written entry is quarantined, costing
//     one recompute and never a wrong answer;
//   - shutdown: SIGTERM flips readiness, stops admission, lets in-flight
//     jobs finish within a grace period, then cancels them; the process
//     exits cleanly either way.
//
// Wall-clock time is deliberately confined to this layer (and the
// binaries above it): deadlines, backoff, and drain grace are service
// concerns. The simulation below remains purely virtual-time and
// deterministic — staggervet enforces the boundary.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/harness"
	"repro/internal/journal"
	"repro/internal/store"
	"repro/internal/vfs"
)

// ErrTransient classifies an execution failure as environmental rather
// than deterministic: retrying with a reseeded fault schedule is
// meaningful. The execution path wraps chaos-classified errors with it;
// test seams can return it directly.
var ErrTransient = errors.New("service: transient failure")

// ErrDraining is returned by Submit once drain has begun (HTTP 503).
var ErrDraining = errors.New("service: draining, not accepting jobs")

// ErrQueueFull is returned by Submit when the admission queue is at
// capacity (HTTP 429).
var ErrQueueFull = errors.New("service: admission queue full")

// ErrJournal is returned by Submit when the accepted record cannot be
// made durable (failed write or fsync, disk full): the server refuses
// work it cannot promise to recover, so the client can retry against a
// daemon whose journal has been repaired by a restart (HTTP 503).
var ErrJournal = errors.New("service: job journal unavailable")

// ErrIdemConflict is returned by Submit when an idempotency key is
// reused with a different job spec (HTTP 409-shaped 400).
var ErrIdemConflict = errors.New("service: idempotency key reused with a different spec")

// Config tunes a Server. The zero value is usable: every field has a
// default applied by New.
type Config struct {
	// JobWorkers is the number of jobs executing concurrently (default 2).
	JobWorkers int
	// QueueDepth bounds the admission queue (default 8); beyond it,
	// Submit sheds load with ErrQueueFull.
	QueueDepth int
	// RunWorkers is the per-job sweep parallelism handed to the harness
	// (default 0 = the harness package default).
	RunWorkers int
	// JobTimeout is the per-job wall-clock deadline (default 5m). A job's
	// own timeout_ms can tighten it, never extend it.
	JobTimeout time.Duration
	// Grace is how long BeginDrain waits for in-flight jobs before
	// cancelling them (default 10s).
	Grace time.Duration
	// MaxRetries bounds transient-failure retries per job (default 2).
	MaxRetries int
	// RetryBase and RetryCap shape the capped exponential backoff between
	// retries (defaults 50ms and 2s).
	RetryBase time.Duration
	RetryCap  time.Duration
	// MaxCells bounds one job's expansion (default 512).
	MaxCells int
	// StoreDir roots the durable result store; "" keeps results in
	// memory only (they die with the process).
	StoreDir string
	// JournalPath roots the write-ahead job journal; "" derives
	// <StoreDir>/journal/jobs.wal when StoreDir is set, so a durable
	// server is crash-safe by default (memory-only servers run without
	// a journal: accepted jobs die with the process, as their results
	// would anyway).
	JournalPath string
	// DisableStoreGC skips the boot-time eviction of store entries
	// written under an old harness.CacheSchema.
	DisableStoreGC bool
	// FS is the filesystem under the store and journal — the seam the
	// deterministic disk-fault harness injects through. Nil means the
	// real filesystem.
	FS vfs.FS
	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)

	// runAll is the execution seam tests use to inject failures; nil
	// means harness.RunAllContained.
	runAll func(ctx context.Context, cfgs []harness.RunConfig, workers int) []harness.RunOutcome
}

func (c *Config) defaults() {
	if c.JobWorkers <= 0 {
		c.JobWorkers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 5 * time.Minute
	}
	if c.Grace <= 0 {
		c.Grace = 10 * time.Second
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	if c.RetryCap <= 0 {
		c.RetryCap = 2 * time.Second
	}
	if c.MaxCells <= 0 {
		c.MaxCells = 512
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.runAll == nil {
		c.runAll = harness.RunAllContained
	}
}

// Server is the simulation service. Create with New, serve with
// Handler, stop with BeginDrain (or Close, which also waits).
type Server struct {
	cfg   Config
	store *store.Store     // nil = memory-only
	jnl   *journal.Journal // nil = no crash recovery

	queue   chan *Job
	admitMu sync.Mutex // serializes Submit against BeginDrain's queue close

	baseCtx    context.Context
	baseCancel context.CancelFunc
	workers    sync.WaitGroup
	draining   atomic.Bool
	drainOnce  sync.Once
	drained    chan struct{}
	start      time.Time

	jobsMu sync.Mutex
	jobs   map[string]*Job
	order  []string          // submission order, for listing
	idem   map[string]string // idempotency key -> job id
	nextID int

	running  atomic.Int64
	accepted atomic.Uint64
	shedFull atomic.Uint64
	shedGone atomic.Uint64
	doneCnt  atomic.Uint64
	failCnt  atomic.Uint64
	cancCnt  atomic.Uint64
	retryCnt atomic.Uint64
	panicCnt atomic.Uint64

	replayed        atomic.Uint64 // journal records replayed at boot
	requeued        atomic.Uint64 // jobs re-enqueued at boot
	tailQuarantined atomic.Uint64 // damaged journal tail bytes quarantined
	resumedCells    atomic.Uint64 // recovered-job cells served from the store
	journalErrs     atomic.Uint64
}

// New builds a Server, recovers any journaled jobs from a previous
// life, and starts its worker pool. Recovered jobs are re-enqueued
// ahead of fresh admissions under their original IDs; their completed
// cells are served from the durable store, so a crash costs only the
// cells that had not yet been persisted.
func New(cfg Config) (*Server, error) {
	cfg.defaults()
	fsys := cfg.defaultFS()
	var st *store.Store
	if cfg.StoreDir != "" {
		var err error
		st, err = store.OpenFS(fsys, cfg.StoreDir)
		if err != nil {
			return nil, err
		}
		if !cfg.DisableStoreGC {
			prefix := fmt.Sprintf("v%d|", harness.CacheSchema)
			if removed, err := st.GC(func(key string) bool { return strings.HasPrefix(key, prefix) }); err != nil {
				cfg.Logf("staggerd: store gc: %v", err)
			} else if removed > 0 {
				cfg.Logf("staggerd: store gc evicted %d old-schema entries", removed)
			}
		}
	}
	jpath := cfg.JournalPath
	if jpath == "" && cfg.StoreDir != "" {
		jpath = filepath.Join(cfg.StoreDir, "journal", "jobs.wal")
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		store:      st,
		baseCtx:    ctx,
		baseCancel: cancel,
		drained:    make(chan struct{}),
		start:      time.Now(),
		jobs:       map[string]*Job{},
		idem:       map[string]string{},
	}
	var recovered []*Job
	if jpath != "" {
		jnl, rep, err := journal.Open(fsys, jpath)
		if err != nil {
			cancel()
			return nil, err
		}
		s.jnl = jnl
		recovered = s.recover(rep)
	}
	// Recovered jobs ride ahead of fresh admissions and must not trip
	// load shedding, so the queue is sized to hold all of them plus the
	// configured depth.
	s.queue = make(chan *Job, cfg.QueueDepth+len(recovered))
	for _, j := range recovered {
		s.queue <- j
		s.accepted.Add(1)
	}
	for i := 0; i < cfg.JobWorkers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s, nil
}

// Store exposes the durable store (nil if the server is memory-only).
func (s *Server) Store() *store.Store { return s.store }

// Submit validates, expands, journals, and enqueues a job. It never
// blocks: a full queue returns ErrQueueFull and a draining server
// ErrDraining, so the HTTP layer can map overload to 429/503 with
// Retry-After instead of holding connections open. An idempotency key
// that matches an existing job returns that job instead of admitting a
// duplicate — the safety net that lets clients blindly resubmit across
// daemon restarts. When the server runs with a journal, Submit returns
// only after the accepted record is fsync'd: from that moment the job
// survives any crash.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	plan, err := spec.plan(s.cfg.MaxCells)
	if err != nil {
		return nil, err
	}

	s.admitMu.Lock()
	defer s.admitMu.Unlock()
	if s.draining.Load() {
		s.shedGone.Add(1)
		return nil, ErrDraining
	}
	if spec.IdempotencyKey != "" {
		s.jobsMu.Lock()
		prior, ok := s.jobs[s.idem[spec.IdempotencyKey]]
		s.jobsMu.Unlock()
		if ok {
			want, _ := json.Marshal(spec)
			got, _ := json.Marshal(prior.spec)
			if !bytes.Equal(want, got) {
				return nil, fmt.Errorf("%w: key %q is %s", ErrIdemConflict, spec.IdempotencyKey, prior.id)
			}
			return prior, nil
		}
	}
	s.jobsMu.Lock()
	s.nextID++
	id := fmt.Sprintf("job-%06d", s.nextID)
	s.jobsMu.Unlock()
	j := newJob(id, spec, plan)
	// Durable admission: the accepted record must be on disk before the
	// job becomes visible. A journal that cannot take the record means
	// the crash-safety promise cannot be made, so the job is refused.
	if s.jnl != nil {
		raw, err := json.Marshal(spec)
		if err != nil {
			return nil, fmt.Errorf("service: encode spec: %w", err)
		}
		if err := s.jnl.Append(journal.Record{
			Type: journal.RecAccepted, Job: id, Idem: spec.IdempotencyKey, Spec: raw,
		}); err != nil {
			s.journalErrs.Add(1)
			s.cfg.Logf("staggerd: %s refused, journal append failed: %v", id, err)
			return nil, fmt.Errorf("%w: %v", ErrJournal, err)
		}
	}
	select {
	case s.queue <- j:
	default:
		s.shedFull.Add(1)
		// Neutralize the accepted record so a crash does not resurrect a
		// job the client was told to retry. Best-effort: if even this
		// append fails, replay re-runs shed work — wasteful, never wrong.
		s.journalState(journal.RecCanceled, id, "shed: admission queue full")
		return nil, ErrQueueFull
	}
	s.jobsMu.Lock()
	s.jobs[id] = j
	s.order = append(s.order, id)
	if spec.IdempotencyKey != "" {
		s.idem[spec.IdempotencyKey] = id
	}
	s.jobsMu.Unlock()
	s.accepted.Add(1)
	return j, nil
}

// Job looks up a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs snapshots every job's status in submission order.
func (s *Server) Jobs() []JobStatus {
	s.jobsMu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.jobsMu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// CancelJob cancels a job: a queued job is terminally canceled in place
// (its worker will skip it), a running one has its context cancelled and
// finishes as canceled within about one simulated event.
func (s *Server) CancelJob(id string) error {
	j, ok := s.Job(id)
	if !ok {
		return fmt.Errorf("service: no job %q", id)
	}
	if j.cancelQueued() {
		s.cancCnt.Add(1)
		s.journalState(journal.RecCanceled, id, "canceled before start")
		return nil
	}
	j.mu.Lock()
	var cancel context.CancelFunc
	if j.state == JobRunning {
		j.cancelRequested.Store(true)
		cancel = j.cancel
	}
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return nil
}

// Ready reports whether the server accepts new jobs (false once drain
// has begun — the /readyz signal load balancers act on).
func (s *Server) Ready() bool { return !s.draining.Load() }

// BeginDrain starts graceful shutdown: readiness flips immediately, no
// further jobs are admitted, in-flight jobs get the configured grace to
// finish, then their contexts are cancelled. It returns immediately and
// is idempotent; Drained is closed when the pool has fully stopped.
func (s *Server) BeginDrain() {
	s.drainOnce.Do(func() {
		s.admitMu.Lock()
		s.draining.Store(true)
		close(s.queue) // workers exit once the backlog is consumed
		s.admitMu.Unlock()
		s.cfg.Logf("staggerd: draining (grace %v)", s.cfg.Grace)
		go func() {
			idle := make(chan struct{})
			go func() {
				s.workers.Wait()
				close(idle)
			}()
			select {
			case <-idle:
			case <-time.After(s.cfg.Grace):
				s.cfg.Logf("staggerd: grace expired, cancelling in-flight jobs")
				s.baseCancel()
				<-idle
			}
			s.baseCancel() // release the context either way
			if s.jnl != nil {
				// The pool is idle and every admitted job is terminal, so
				// compacting to the live set truncates the journal to (almost
				// always) just its header — the clean-shutdown marker that
				// makes the next boot replay nothing.
				if err := s.jnl.Compact(s.liveRecords()); err != nil {
					s.cfg.Logf("staggerd: drain compact: %v", err)
				}
				s.jnl.Close()
			}
			close(s.drained)
		}()
	})
}

// Drained is closed when every worker has stopped after BeginDrain.
func (s *Server) Drained() <-chan struct{} { return s.drained }

// Close drains and waits for the pool to stop.
func (s *Server) Close() {
	s.BeginDrain()
	<-s.drained
}

// Metrics is the service-level counter snapshot served by /metrics
// alongside the store's own Stats.
type Metrics struct {
	Accepted     uint64         `json:"accepted"`
	ShedFull     uint64         `json:"shed_queue_full"`
	ShedDraining uint64         `json:"shed_draining"`
	Done         uint64         `json:"done"`
	Failed       uint64         `json:"failed"`
	Canceled     uint64         `json:"canceled"`
	Retries      uint64         `json:"retries"`
	Panics       uint64         `json:"panics_contained"`
	Queued       int            `json:"queued"`
	Running      int            `json:"running"`
	Draining     bool           `json:"draining"`
	UptimeMS     int64          `json:"uptime_ms"`
	Store        *store.Stats   `json:"store,omitempty"`
	Recovery     *RecoveryStats `json:"recovery,omitempty"`
	Journal      *journal.Stats `json:"journal,omitempty"`
}

// Metrics snapshots the service counters.
func (s *Server) Metrics() Metrics {
	m := Metrics{
		Accepted:     s.accepted.Load(),
		ShedFull:     s.shedFull.Load(),
		ShedDraining: s.shedGone.Load(),
		Done:         s.doneCnt.Load(),
		Failed:       s.failCnt.Load(),
		Canceled:     s.cancCnt.Load(),
		Retries:      s.retryCnt.Load(),
		Panics:       s.panicCnt.Load(),
		Queued:       len(s.queue),
		Running:      int(s.running.Load()),
		Draining:     s.draining.Load(),
		UptimeMS:     time.Since(s.start).Milliseconds(),
	}
	if s.store != nil {
		st := s.store.Stats()
		m.Store = &st
	}
	if s.jnl != nil {
		m.Recovery = &RecoveryStats{
			ReplayedRecords:      s.replayed.Load(),
			RequeuedJobs:         s.requeued.Load(),
			QuarantinedTailBytes: s.tailQuarantined.Load(),
			ResumedCells:         s.resumedCells.Load(),
			JournalErrors:        s.journalErrs.Load(),
		}
		js := s.jnl.Stats()
		m.Journal = &js
	}
	return m
}

// worker consumes the admission queue until it is closed and drained.
func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob drives one job through its deadline, retry, and terminal state.
func (s *Server) runJob(j *Job) {
	if !j.markRunning() {
		return // canceled while queued
	}
	s.running.Add(1)
	defer s.running.Add(-1)
	s.journalState(journal.RecRunning, j.id, "")

	timeout := s.cfg.JobTimeout
	if t := j.spec.timeout(); t > 0 && t < timeout {
		timeout = t
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
	defer cancel()
	j.setCancel(cancel)

	var err error
	for attempt := 0; ; attempt++ {
		err = s.execute(ctx, j, attempt)
		if err == nil {
			// Results are durable in the store before the terminal record is
			// written: a crash between the two re-runs the job, which then
			// serves every cell from the store — same bytes, wasted instant.
			j.finish(JobDone, "")
			s.doneCnt.Add(1)
			s.journalState(journal.RecDone, j.id, "")
			return
		}
		if ctx.Err() != nil || attempt >= s.cfg.MaxRetries || !errors.Is(err, ErrTransient) {
			break
		}
		j.bumpRetries()
		s.retryCnt.Add(1)
		d := backoff(s.cfg.RetryBase, s.cfg.RetryCap, attempt)
		s.cfg.Logf("staggerd: %s attempt %d failed transiently (%v), retrying in %v", j.id, attempt, err, d)
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
		case <-t.C:
		}
	}
	if j.cancelRequested.Load() {
		j.finish(JobCanceled, err.Error())
		s.cancCnt.Add(1)
		s.journalState(journal.RecCanceled, j.id, err.Error())
		return
	}
	if errors.Is(err, context.DeadlineExceeded) {
		err = fmt.Errorf("deadline (%v) exceeded: %w", timeout, err)
	}
	j.finish(JobFailed, err.Error())
	s.failCnt.Add(1)
	s.journalState(journal.RecFailed, j.id, err.Error())
	s.cfg.Logf("staggerd: %s failed: %v", j.id, err)
}

// backoff is capped exponential: base<<attempt, clamped to cap. No
// jitter on purpose — the daemon stays free of global randomness, and
// with a bounded worker pool there is no thundering herd to break up.
func backoff(base, limit time.Duration, attempt int) time.Duration {
	d := base
	for i := 0; i < attempt && d < limit; i++ {
		d *= 2
	}
	if d > limit {
		d = limit
	}
	return d
}
