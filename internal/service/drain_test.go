package service

import (
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/testutil"
)

// TestDrainUnderChaosCompletesWithinGrace is the drain acceptance case,
// against the real engine: with a long chaos campaign in flight, drain
// must flip readiness immediately, reject new admissions, finish within
// the grace period by cancelling the in-flight simulation mid-run, and
// leave no goroutines behind.
func TestDrainUnderChaosCompletesWithinGrace(t *testing.T) {
	baseline := testutil.GoroutineBaseline()
	const grace = 500 * time.Millisecond
	s, err := New(Config{JobWorkers: 2, Grace: grace, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}

	// A chaos cell far too large to finish during the test: at ~3M
	// simulated events/s a million list operations run for tens of
	// seconds, so only cancellation can end it inside the grace window.
	spec := JobSpec{Kind: KindChaos,
		Cells:      []CellSpec{{Bench: "list-hi", Threads: 4, Seed: 5, Ops: 1_000_000}},
		ChaosRates: []float64{0.01},
	}
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, JobRunning)

	start := time.Now()
	s.BeginDrain()

	// Readiness flips immediately, on both the API and the HTTP surface.
	if s.Ready() {
		t.Fatal("Ready() true after BeginDrain")
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 503 {
		t.Fatalf("readyz during drain = %d, want 503", rec.Code)
	}
	if _, err := s.Submit(tinySpec(9)); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit during drain = %v, want ErrDraining", err)
	}
	if m := s.Metrics(); !m.Draining || m.ShedDraining == 0 {
		t.Fatalf("metrics during drain: %+v", m)
	}

	// The pool must stop within grace plus cancellation latency (one
	// simulated event per core), far under the full job's runtime.
	select {
	case <-s.Drained():
	case <-time.After(grace + 5*time.Second):
		t.Fatal("drain did not complete; in-flight chaos job was not cancelled")
	}
	if elapsed := time.Since(start); elapsed < grace {
		// Sanity: the job really was in flight, not already done.
		t.Logf("drain finished in %v (job finished on its own?)", elapsed)
	}

	// The abandoned job terminated as cancelled work, not success.
	st := j.Status()
	if st.State != JobFailed && st.State != JobCanceled {
		t.Fatalf("in-flight job ended %q, want failed/canceled", st.State)
	}
	if st.State == JobFailed && !strings.Contains(st.Error, "context canceled") {
		t.Fatalf("job error %q does not show cancellation", st.Error)
	}

	// Zero leaked goroutines: the count returns to the pre-server
	// baseline (with slack for runtime background threads).
	testutil.WaitNoGoroutineLeaks(t, baseline)
}

// TestDrainIdleServerIsImmediate: draining with nothing in flight closes
// the pool without waiting for the grace period.
func TestDrainIdleServerIsImmediate(t *testing.T) {
	s, err := New(Config{Grace: 30 * time.Second, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	s.BeginDrain()
	select {
	case <-s.Drained():
	case <-time.After(5 * time.Second):
		t.Fatal("idle drain hung")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("idle drain took %v, should not consume the grace period", elapsed)
	}
}
