package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backend"
	"repro/internal/chaos"
	"repro/internal/harness"
	"repro/internal/stagger"
	"repro/internal/workloads"
)

// Job kinds. An empty kind is inferred: explore when the Explore field is
// set, run for a single explicit cell, sweep otherwise.
const (
	KindRun     = "run"
	KindSweep   = "sweep"
	KindChaos   = "chaos"
	KindExplore = "explore"
)

// chaosWatchdog bounds each fault-injected cell's virtual clock (the
// ChaosSweep default): an injected livelock must fail loudly inside the
// simulation — where the failure is deterministic and chaos-classified as
// transient — instead of silently eating the job's wall-clock deadline.
const chaosWatchdog = 200_000_000

// CellSpec selects one simulation cell: the wire-level mirror of
// harness.RunConfig restricted to the serializable surface. Every field
// is deterministic simulation input, so a normalized CellSpec plus
// harness.CacheSchema is a complete durable-store key.
type CellSpec struct {
	Bench     string  `json:"bench"`
	Mode      string  `json:"mode,omitempty"`     // "" = "staggered" (see stagger.ParseMode)
	Backend   string  `json:"backend,omitempty"`  // "" = the pre-arena runtime under Mode (see backend.Names)
	Capacity  int     `json:"capacity,omitempty"` // limited backend's line capacity; 0 = its default
	Threads   int     `json:"threads,omitempty"`  // 0 = 4
	Seed      int64   `json:"seed,omitempty"`     // 0 = 42 (the harness default)
	Ops       int     `json:"ops,omitempty"`      // 0 = the workload's default
	Naive     bool    `json:"naive,omitempty"`
	Lazy      bool    `json:"lazy,omitempty"`
	Sched     string  `json:"sched,omitempty"`
	SchedSeed int64   `json:"sched_seed,omitempty"`
	Oracle    bool    `json:"oracle,omitempty"`
	ChaosRate float64 `json:"chaos_rate,omitempty"`
	ChaosSeed int64   `json:"chaos_seed,omitempty"` // 0 = Seed
	Hardened  bool    `json:"hardened,omitempty"`
	Watchdog  uint64  `json:"watchdog,omitempty"` // 0 = none (chaos cells: 200M)
}

// normalized applies the service defaults and canonicalizes the mode
// token, so that equivalent spellings of one cell produce one store key.
func (c CellSpec) normalized() (CellSpec, stagger.Mode, error) {
	if c.Bench == "" {
		return c, 0, errors.New("cell: bench is required")
	}
	if _, err := workloads.Get(c.Bench); err != nil {
		return c, 0, fmt.Errorf("cell: %w", err)
	}
	if c.Mode == "" {
		c.Mode = "staggered"
	}
	m, err := stagger.ParseMode(c.Mode)
	if err != nil {
		return c, 0, fmt.Errorf("cell: %w", err)
	}
	c.Mode = modeToken(m)
	if c.Backend != "" {
		if _, err := backend.Get(c.Backend); err != nil {
			return c, 0, fmt.Errorf("cell: %w", err)
		}
	}
	if c.Capacity < 0 {
		return c, 0, fmt.Errorf("cell: capacity %d must be nonnegative", c.Capacity)
	}
	if c.Capacity != 0 && c.Backend != "limited" {
		return c, 0, fmt.Errorf("cell: capacity is a knob of the limited backend, not %q", c.Backend)
	}
	if c.Threads == 0 {
		c.Threads = 4
	}
	if c.Threads < 0 {
		return c, 0, fmt.Errorf("cell: threads %d must be positive", c.Threads)
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.ChaosRate < 0 || c.ChaosRate > 1 {
		return c, 0, fmt.Errorf("cell: chaos_rate %g outside [0,1]", c.ChaosRate)
	}
	if c.ChaosRate > 0 {
		if c.ChaosSeed == 0 {
			c.ChaosSeed = c.Seed
		}
		if c.Watchdog == 0 {
			c.Watchdog = chaosWatchdog
		}
	} else {
		c.ChaosSeed = 0
	}
	return c, m, nil
}

// modeToken is the canonical wire spelling for each mode, the inverse of
// stagger.ParseMode's preferred forms.
func modeToken(m stagger.Mode) string {
	switch m {
	case stagger.ModeHTM:
		return "htm"
	case stagger.ModeAddrOnly:
		return "addronly"
	case stagger.ModeStaggeredSW:
		return "sw"
	default:
		return "staggered"
	}
}

// cellKey builds the durable-store key for a normalized cell. The
// harness.CacheSchema prefix means a schema bump silently invalidates
// every old entry: stale-format payloads are never found, they age out
// as misses and are recomputed under the new schema.
func cellKey(c CellSpec) string {
	b, _ := json.Marshal(c) // CellSpec has fixed field order and no maps
	return fmt.Sprintf("v%d|cell|%s", harness.CacheSchema, b)
}

// runConfig lowers a normalized cell to the harness.
func runConfig(c CellSpec, m stagger.Mode) harness.RunConfig {
	rc := harness.RunConfig{
		Benchmark: c.Bench,
		Mode:      m,
		Backend:   c.Backend,
		Capacity:  c.Capacity,
		Threads:   c.Threads,
		Seed:      c.Seed,
		TotalOps:  c.Ops,
		Naive:     c.Naive,
		Lazy:      c.Lazy,
		Sched:     c.Sched,
		SchedSeed: c.SchedSeed,
		Oracle:    c.Oracle,
		Watchdog:  c.Watchdog,
	}
	if c.ChaosRate > 0 {
		cc := chaos.Scaled(c.ChaosRate, c.ChaosSeed)
		rc.Chaos = &cc
	}
	if c.Hardened {
		sc := stagger.HardenedConfig(m)
		rc.Stagger = &sc
	}
	return rc
}

// ExploreSpec is the wire form of a schedule-exploration campaign.
type ExploreSpec struct {
	Cell     CellSpec `json:"cell"`
	Sched    string   `json:"sched,omitempty"` // "" = "pct:3"
	Runs     int      `json:"runs,omitempty"`  // 0 = 100
	Minimize bool     `json:"minimize,omitempty"`
}

func (e ExploreSpec) normalized() (ExploreSpec, stagger.Mode, error) {
	cell, m, err := e.Cell.normalized()
	if err != nil {
		return e, 0, err
	}
	e.Cell = cell
	if e.Sched == "" {
		e.Sched = "pct:3"
	}
	if e.Runs <= 0 {
		e.Runs = 100
	}
	return e, m, nil
}

func exploreKey(e ExploreSpec) string {
	b, _ := json.Marshal(e)
	return fmt.Sprintf("v%d|explore|%s", harness.CacheSchema, b)
}

// JobSpec is one submitted unit of work. Cells can be listed explicitly
// or expanded as the cross product of Benchmarks x Modes x Threads x
// Seeds (empty Benchmarks sweeps every workload, matching the chaos
// campaign CLI); the chaos kind further crosses the base cells with
// ChaosRates under the hardened runtime.
type JobSpec struct {
	Kind  string     `json:"kind,omitempty"`
	Cells []CellSpec `json:"cells,omitempty"`

	Benchmarks []string `json:"benchmarks,omitempty"`
	Modes      []string `json:"modes,omitempty"`    // empty = ["staggered"]
	Backends   []string `json:"backends,omitempty"` // empty = [""] (the pre-arena runtime)
	Threads    []int    `json:"threads,omitempty"`  // empty = [4]
	Seeds      []int64  `json:"seeds,omitempty"`    // empty = [42]
	Ops        int      `json:"ops,omitempty"`

	ChaosRates []float64 `json:"chaos_rates,omitempty"` // chaos kind; empty = [0.01]

	Explore *ExploreSpec `json:"explore,omitempty"`

	// IdempotencyKey, when set, makes resubmission safe across daemon
	// restarts: a submit whose key matches a live job returns that job
	// instead of admitting a duplicate, and the key is journaled so the
	// index survives a crash. Reusing a key with a different spec is an
	// error.
	IdempotencyKey string `json:"idem,omitempty"`

	// TimeoutMS optionally tightens (never extends) the server's per-job
	// wall-clock deadline.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

func (spec JobSpec) timeout() time.Duration {
	if spec.TimeoutMS <= 0 {
		return 0
	}
	return time.Duration(spec.TimeoutMS) * time.Millisecond
}

// jobPlan is a validated, fully expanded JobSpec: everything the workers
// need, computed once at admission so a malformed spec is a 400 at
// submit, never a failed job.
type jobPlan struct {
	kind    string
	cells   []harness.RunConfig
	keys    []string
	explore harness.ExploreConfig // kind == KindExplore only
}

func (spec JobSpec) plan(maxCells int) (*jobPlan, error) {
	kind := spec.Kind
	if kind == "" {
		switch {
		case spec.Explore != nil:
			kind = KindExplore
		case len(spec.Cells) == 1 && len(spec.Benchmarks) == 0:
			kind = KindRun
		default:
			kind = KindSweep
		}
	}

	if kind == KindExplore {
		if spec.Explore == nil {
			return nil, errors.New("explore job needs an explore spec")
		}
		e, m, err := spec.Explore.normalized()
		if err != nil {
			return nil, err
		}
		ec := harness.ExploreConfig{
			Benchmark: e.Cell.Bench,
			Mode:      m,
			Backend:   e.Cell.Backend,
			Capacity:  e.Cell.Capacity,
			Threads:   e.Cell.Threads,
			Seed:      e.Cell.Seed,
			TotalOps:  e.Cell.Ops,
			Spec:      e.Sched,
			Runs:      e.Runs,
			Minimize:  e.Minimize,
		}
		if e.Cell.Hardened {
			sc := stagger.HardenedConfig(m)
			ec.Stagger = &sc
		}
		if e.Cell.ChaosRate > 0 {
			cc := chaos.Scaled(e.Cell.ChaosRate, e.Cell.ChaosSeed)
			ec.Chaos = &cc
		}
		return &jobPlan{kind: kind, keys: []string{exploreKey(e)}, explore: ec}, nil
	}

	base := spec.Cells
	if len(base) == 0 {
		base = spec.product()
	}
	if kind == KindChaos {
		rates := spec.ChaosRates
		if len(rates) == 0 {
			rates = []float64{0.01}
		}
		crossed := make([]CellSpec, 0, len(base)*len(rates))
		for _, c := range base {
			for _, r := range rates {
				cc := c
				cc.ChaosRate = r
				cc.Hardened = true
				crossed = append(crossed, cc)
			}
		}
		base = crossed
	}
	if len(base) == 0 {
		return nil, errors.New("job expands to zero cells")
	}
	if kind == KindRun && len(base) != 1 {
		return nil, fmt.Errorf("run job must be exactly one cell, got %d", len(base))
	}
	if len(base) > maxCells {
		return nil, fmt.Errorf("job expands to %d cells, limit %d", len(base), maxCells)
	}

	p := &jobPlan{kind: kind, cells: make([]harness.RunConfig, len(base)), keys: make([]string, len(base))}
	for i, c := range base {
		nc, m, err := c.normalized()
		if err != nil {
			return nil, fmt.Errorf("cell %d: %w", i, err)
		}
		p.cells[i] = runConfig(nc, m)
		p.keys[i] = cellKey(nc)
	}
	return p, nil
}

// product expands the sweep axes into explicit cells.
func (spec JobSpec) product() []CellSpec {
	benches := spec.Benchmarks
	if len(benches) == 0 {
		benches = workloads.Names()
	}
	modes := spec.Modes
	if len(modes) == 0 {
		modes = []string{"staggered"}
	}
	backends := spec.Backends
	if len(backends) == 0 {
		backends = []string{""}
	}
	threads := spec.Threads
	if len(threads) == 0 {
		threads = []int{4}
	}
	seeds := spec.Seeds
	if len(seeds) == 0 {
		seeds = []int64{42}
	}
	var out []CellSpec
	for _, b := range benches {
		for _, m := range modes {
			for _, bk := range backends {
				for _, th := range threads {
					for _, sd := range seeds {
						out = append(out, CellSpec{Bench: b, Mode: m, Backend: bk, Threads: th, Seed: sd, Ops: spec.Ops})
					}
				}
			}
		}
	}
	return out
}

// Job states.
const (
	JobQueued   = "queued"
	JobRunning  = "running"
	JobDone     = "done"
	JobFailed   = "failed"
	JobCanceled = "canceled"
)

// Job is one admitted unit of work. All mutable state is guarded by mu;
// Done is closed exactly once, when the job reaches a terminal state.
type Job struct {
	id        string
	spec      JobSpec
	plan      *jobPlan
	idem      string // idempotency key ("" = none)
	recovered bool   // re-enqueued by journal replay after a restart

	mu              sync.Mutex
	state           string
	err             string
	attempts        int // retries consumed (0 = first attempt sufficed)
	fromStore       int // cells served from the durable store
	results         [][]byte
	created         time.Time
	started         time.Time
	finished        time.Time
	cancel          context.CancelFunc
	cancelRequested atomic.Bool

	done chan struct{}
}

// newJob builds a queued job; both the submit path and journal replay
// construct jobs through here so the two cannot drift.
func newJob(id string, spec JobSpec, plan *jobPlan) *Job {
	return &Job{
		id:      id,
		spec:    spec,
		plan:    plan,
		idem:    spec.IdempotencyKey,
		state:   JobQueued,
		created: time.Now(),
		done:    make(chan struct{}),
	}
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// JobStatus is the wire snapshot of a job.
type JobStatus struct {
	ID        string `json:"id"`
	Kind      string `json:"kind"`
	State     string `json:"state"`
	Cells     int    `json:"cells"`
	FromStore int    `json:"from_store"`
	Computed  int    `json:"computed"` // cells actually simulated this run
	Recovered bool   `json:"recovered,omitempty"`
	Idem      string `json:"idem,omitempty"`
	Retries   int    `json:"retries"`
	Error     string `json:"error,omitempty"`
	CreatedMS int64  `json:"created_ms,omitempty"`
	WaitMS    int64  `json:"wait_ms,omitempty"`    // queued -> started
	RunMS     int64  `json:"run_ms,omitempty"`     // started -> finished
	Timeout   int64  `json:"timeout_ms,omitempty"` // effective deadline
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.id,
		Kind:      j.plan.kind,
		State:     j.state,
		Cells:     len(j.plan.keys),
		FromStore: j.fromStore,
		Recovered: j.recovered,
		Idem:      j.idem,
		Retries:   j.attempts,
		Error:     j.err,
		CreatedMS: j.created.UnixMilli(),
	}
	if j.state == JobDone {
		st.Computed = len(j.plan.keys) - j.fromStore
	}
	if !j.started.IsZero() {
		st.WaitMS = j.started.Sub(j.created).Milliseconds()
		if !j.finished.IsZero() {
			st.RunMS = j.finished.Sub(j.started).Milliseconds()
		}
	}
	return st
}

// markRunning claims the job for a worker; false means it was canceled
// while queued and must be skipped without touching done.
func (j *Job) markRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobQueued {
		return false
	}
	j.state = JobRunning
	j.started = time.Now()
	return true
}

func (j *Job) setCancel(c context.CancelFunc) {
	j.mu.Lock()
	j.cancel = c
	j.mu.Unlock()
}

func (j *Job) bumpRetries() {
	j.mu.Lock()
	j.attempts++
	j.mu.Unlock()
}

func (j *Job) setResults(payloads [][]byte, fromStore int) {
	j.mu.Lock()
	j.results = payloads
	j.fromStore = fromStore
	j.mu.Unlock()
}

// finish moves a running job to a terminal state and releases waiters.
func (j *Job) finish(state, errMsg string) {
	j.mu.Lock()
	j.state = state
	j.err = errMsg
	j.finished = time.Now()
	j.mu.Unlock()
	close(j.done)
}

// cancelQueued cancels a job that has not started; false means it is
// running (or terminal) and the caller should cancel its context instead.
func (j *Job) cancelQueued() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobQueued {
		return false
	}
	j.state = JobCanceled
	j.err = "canceled before start"
	j.finished = time.Now()
	close(j.done)
	return true
}

// payloads returns the per-cell result payloads of a done job (nil
// otherwise). The byte slices are the exact bytes stored durably.
func (j *Job) payloads() [][]byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobDone {
		return nil
	}
	return j.results
}
