package service

import (
	"encoding/json"
	"fmt"

	"repro/internal/journal"
	"repro/internal/vfs"
)

// This file is the crash-recovery half of the server: the write-ahead
// job journal on the submit path, and the boot-time replay that turns
// journal facts back into enqueued work.
//
// The contract, stated as the invariant the crash harness asserts:
// once Submit returns a job (so the accepted record is fsync'd), that
// job reaches a terminal state with byte-identical results even if the
// process is SIGKILLed at any instant in between. The proof sketch:
// the accepted record survives the crash (WAL + CRC framing + tail
// quarantine), boot replays it and re-enqueues the job under its
// original ID, and because every cell is a pure function of (config,
// seed), re-execution serves already-durable cells from the store and
// recomputes only the missing ones — the same bytes either way. All
// journal failure modes degrade toward at-least-once execution (a
// re-run that wastes compute), never toward lost or corrupted results.

// journalState appends a state-transition record. Transition appends
// are best-effort: losing one can only cause a finished job to re-run
// after a crash, which is safe, so failures are logged and counted
// rather than surfaced.
func (s *Server) journalState(typ string, id, errMsg string) {
	if s.jnl == nil {
		return
	}
	if err := s.jnl.Append(journal.Record{Type: typ, Job: id, Error: errMsg}); err != nil {
		s.journalErrs.Add(1)
		s.cfg.Logf("staggerd: journal %s %s: %v", typ, id, err)
	}
}

// jobFact is one job's folded journal history.
type jobFact struct {
	state string
	idem  string
	spec  json.RawMessage
}

// recover folds the replayed records into per-job facts, rebuilds and
// re-enqueues every non-terminal job under its original ID, restores
// the idempotency index and the ID counter, and compacts the journal
// down to the accepted records of the jobs still alive. Terminal
// entries are dropped: their results live in the store, where an
// identical resubmission finds them. Duplicate records for one job
// (possible when a crash interrupts compaction bookkeeping) fold into
// one fact, so replay never double-enqueues.
//
// Called from New before the worker pool starts; no locks needed.
func (s *Server) recover(rep *journal.Replay) []*Job {
	facts := map[string]*jobFact{}
	var seen []string
	for _, r := range rep.Records {
		f := facts[r.Job]
		if f == nil {
			f = &jobFact{}
			facts[r.Job] = f
			seen = append(seen, r.Job)
		}
		if r.Type == journal.RecAccepted {
			f.spec = r.Spec
			f.idem = r.Idem
		}
		f.state = r.Type
		var n int
		if _, err := fmt.Sscanf(r.Job, "job-%d", &n); err == nil && n > s.nextID {
			s.nextID = n
		}
	}

	var requeued []*Job
	var live []journal.Record
	for _, id := range seen {
		f := facts[id]
		if journal.Terminal(f.state) || f.spec == nil {
			continue
		}
		var spec JobSpec
		if err := json.Unmarshal(f.spec, &spec); err != nil {
			s.cfg.Logf("staggerd: recovery: %s has an unreadable spec, dropping: %v", id, err)
			continue
		}
		plan, err := spec.plan(s.cfg.MaxCells)
		if err != nil {
			// The spec no longer validates under this binary (workload or
			// limit drift across an upgrade). Nobody holds a handle to it
			// after a restart, so dropping it with a loud log is terminal.
			s.cfg.Logf("staggerd: recovery: %s no longer plans, dropping: %v", id, err)
			continue
		}
		j := newJob(id, spec, plan)
		j.recovered = true
		s.jobs[id] = j
		s.order = append(s.order, id)
		if j.idem != "" {
			s.idem[j.idem] = id
		}
		live = append(live, journal.Record{Type: journal.RecAccepted, Job: id, Idem: f.idem, Spec: f.spec})
		requeued = append(requeued, j)
	}
	if err := s.jnl.Compact(live); err != nil {
		s.cfg.Logf("staggerd: recovery: compact: %v", err)
	}
	s.replayed.Store(uint64(len(rep.Records)))
	s.requeued.Store(uint64(len(requeued)))
	s.tailQuarantined.Store(uint64(rep.QuarantinedBytes))
	if rep.QuarantinedBytes > 0 {
		s.cfg.Logf("staggerd: recovery: quarantined %d damaged journal tail bytes to %s",
			rep.QuarantinedBytes, rep.QuarantinePath)
	}
	return requeued
}

// liveRecords snapshots the accepted records of every non-terminal job,
// for the drain-time compaction that truncates terminal entries.
func (s *Server) liveRecords() []journal.Record {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	var live []journal.Record
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		alive := j.state == JobQueued || j.state == JobRunning
		j.mu.Unlock()
		if !alive {
			continue
		}
		raw, err := json.Marshal(j.spec)
		if err != nil {
			continue
		}
		live = append(live, journal.Record{Type: journal.RecAccepted, Job: id, Idem: j.idem, Spec: raw})
	}
	return live
}

// RecoveryStats is the /metrics view of the journal-backed recovery
// machinery, present whenever the server runs with a journal.
type RecoveryStats struct {
	ReplayedRecords      uint64 `json:"replayed_records"`
	RequeuedJobs         uint64 `json:"requeued_jobs"`
	QuarantinedTailBytes uint64 `json:"quarantined_tail_bytes"`
	ResumedCells         uint64 `json:"resumed_cells"`
	JournalErrors        uint64 `json:"journal_errors"`
}

// defaultFS resolves the configured filesystem seam.
func (c *Config) defaultFS() vfs.FS {
	if c.FS != nil {
		return c.FS
	}
	return vfs.OS
}
