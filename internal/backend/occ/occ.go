// Package occ implements a software optimistic-concurrency-control
// backend for the concurrency-control arena (package backend), in the
// style of Zhang et al.'s "Optimistic Concurrency Control for
// Real-world Go Programs": no hardware transactions, no timestamps —
// value-based read-set validation at commit under a single commit
// lock.
//
// Execution model, per atomic-block instance:
//
//   - Optimistic phase. The body runs against committed memory with
//     nontransactional loads; every first read of a word is logged with
//     the value observed, every store is buffered in a software write
//     set (reads check the write set first, so the attempt sees its own
//     writes). Each tracked access charges one µ-op of bookkeeping —
//     the per-access instrumentation cost software TM cannot avoid.
//   - Commit. The committer acquires the global commit lock with a
//     nontransactional CAS, then re-reads every read-set word and
//     compares values. Equality means the attempt's entire read set is
//     simultaneously valid at this instant, so the attempt serializes
//     here (values, not versions — ABA reordering is invisible to a
//     value-based snapshot and harmless to serializability). On
//     success the write set is published as one atomic batch
//     (htm.Core.NTStoreBatch) and the lock drops; on mismatch the lock
//     drops, the attempt counts as an AbortConflict, and the body
//     re-runs after polite backoff.
//   - Locked fallback. After MaxRetries failed validations the
//     instance runs once more while holding the commit lock from the
//     start: no writer can race it, validation is unnecessary, and
//     progress is guaranteed. These commits count as irrevocable,
//     mirroring the HTM runtime's global-lock fallback.
//
// A doomed optimistic body can observe an inconsistent multi-word
// snapshot (reads at different times straddling another commit); its
// validation is then guaranteed to fail and the work is wasted — the
// classic OCC hazard, and exactly what the cross-backend wasted-cycles
// comparison measures. Because every publication is atomic in virtual
// time and every committed state is structurally consistent, doomed
// traversals still terminate: once its rivals drain, a reader's next
// attempt validates.
//
// All commits, aborts, and cycle attribution flow through the core's
// software-transaction accounting (htm.Core.SWTxBegin/SWTxCommit/
// SWTxAbort), and every serialization point is reported to the
// machine's observer via htm.Core.ReportAtomic before publication, so
// the serializability oracle and internal/obs reports treat OCC runs
// exactly like hardware ones.
package occ

import (
	"math/rand"

	"repro/internal/anchor"
	"repro/internal/backend"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/prog"
)

func init() {
	backend.Register(backend.Info{
		Name:     "occ",
		Summary:  "software OCC: buffered writes, value-validated read set, commit-lock publication",
		Software: true,
		New: func(m *htm.Machine, comp *anchor.Compiled, opts backend.Options) (backend.Runtime, error) {
			return New(m, opts), nil
		},
	})
}

// retryConfig is the subset of the shared runtime configuration OCC
// borrows from the stagger config the harness always builds: the retry
// budget and the inter-retry backoff policy.
type retryConfig struct {
	maxRetries  int
	backoffBase uint64
	backoffExp  bool
	backoffCap  uint64
}

// lockSpin is the pause between commit-lock acquisition polls, in
// cycles (the same constant the HTM runtime uses for its global lock).
const lockSpin = 50

// Runtime is one OCC backend instance bound to one machine.
type Runtime struct {
	m        *htm.Machine
	cfg      retryConfig
	recorder backend.SiteRecorder

	// lockAddr is the commit lock: one dedicated cache line holding
	// owner+1, acquired with a nontransactional CAS.
	lockAddr mem.Addr

	threads []*Thread
}

// New builds the OCC runtime. The retry/backoff fields are taken from
// the stagger.Config in opts.StaggerConfig when present (so CLI
// -retries style overrides apply uniformly across backends); anything
// else in that config is ignored.
func New(m *htm.Machine, opts backend.Options) *Runtime {
	rt := &Runtime{
		m:        m,
		cfg:      retryConfig{maxRetries: 10, backoffBase: 64},
		recorder: opts.SiteRecorder,
		lockAddr: m.Alloc.AllocLines(1),
		threads:  make([]*Thread, m.Config().Cores),
	}
	if sc, ok := opts.StaggerConfig.(interface {
		RetryLoop() (int, uint64, bool, uint64)
	}); ok {
		rt.cfg.maxRetries, rt.cfg.backoffBase, rt.cfg.backoffExp, rt.cfg.backoffCap = sc.RetryLoop()
	}
	if rt.cfg.maxRetries <= 0 {
		rt.cfg.maxRetries = 10
	}
	if rt.cfg.backoffBase == 0 {
		rt.cfg.backoffBase = 64
	}
	return rt
}

// Thread returns the per-thread context for core tid, creating it on
// first use.
func (rt *Runtime) Thread(tid int) backend.Thread {
	if rt.threads[tid] == nil {
		rt.threads[tid] = &Thread{rt: rt, tid: tid}
	}
	return rt.threads[tid]
}

// Thread is the per-thread OCC state: one reusable access context and
// a deterministic backoff PRNG seeded from the machine seed and thread
// ID (the simulated-state randomness the arena contract requires).
type Thread struct {
	rt  *Runtime
	tid int
	ctx Ctx
	rng *rand.Rand
}

func (th *Thread) rand() *rand.Rand {
	if th.rng == nil {
		th.rng = rand.New(rand.NewSource(th.rt.m.Config().Seed*48271 + int64(th.tid)*69621 + 11))
	}
	return th.rng
}

// backoff stalls between failed validations, linear ("Polite") by
// default or capped-exponential when the shared config hardened the
// retry loop.
func (th *Thread) backoff(c *htm.Core, attempt int) {
	cfg := th.rt.cfg
	mean := cfg.backoffBase * uint64(attempt+1)
	if cfg.backoffExp {
		cap := cfg.backoffCap
		if cap == 0 {
			cap = 64 * cfg.backoffBase
		}
		mean = cfg.backoffBase
		if attempt < 63 {
			mean = cfg.backoffBase << uint(attempt)
		}
		if mean > cap || mean == 0 {
			mean = cap
		}
	}
	jitter := uint64(th.rand().Int63n(int64(mean)))
	c.SpinWait(mean/2+jitter, htm.WaitBackoff)
}

// Atomic executes body as one OCC transaction on core c: optimistic
// attempts with commit-time validation, then the locked fallback.
func (th *Thread) Atomic(c *htm.Core, ab *prog.AtomicBlock, body func(backend.Ctx)) {
	if c.ID() != th.tid {
		panic("occ: thread used on wrong core")
	}
	tc := &th.ctx
	tc.reset(th.rt, c, ab)
	c.SetABTag(ab.ID)
	defer c.SetABTag(0)
	for attempt := 0; attempt < th.rt.cfg.maxRetries; attempt++ {
		tc.beginAttempt(false)
		c.SWTxBegin()
		body(tc)
		th.acquireCommitLock(c)
		if tc.validate(c) {
			tc.publish(c, false)
			th.releaseCommitLock(c)
			c.SWTxCommit(false)
			return
		}
		th.releaseCommitLock(c)
		c.SWTxAbort(htm.AbortConflict)
		th.backoff(c, attempt)
	}
	// Locked fallback: run the body while holding the commit lock, so
	// no concurrent commit can invalidate it — publication without
	// validation, guaranteed progress, counted as irrevocable.
	th.acquireCommitLock(c)
	tc.beginAttempt(true)
	c.SWTxBegin()
	body(tc)
	tc.publish(c, true)
	th.releaseCommitLock(c)
	c.SWTxCommit(true)
}

// acquireCommitLock spins on the commit lock with nontransactional
// CASes; lock waiting lands in the WaitLock stall category, outside
// the attempt's useful/wasted split.
func (th *Thread) acquireCommitLock(c *htm.Core) {
	for !c.NTCas(th.rt.lockAddr, 0, uint64(c.ID())+1) {
		c.SpinWait(lockSpin, htm.WaitLock)
	}
}

func (th *Thread) releaseCommitLock(c *htm.Core) {
	c.NTStore(th.rt.lockAddr, 0)
}

// Ctx is the OCC access context: the software read set (word → value
// first observed) and write buffer (word → pending value) of one
// atomic-block instance. It implements backend.Ctx.
type Ctx struct {
	rt     *Runtime
	c      *htm.Core
	ab     *prog.AtomicBlock
	locked bool // fallback mode: lock held, validation skipped
	tag    any

	readAddrs  []mem.Addr
	readVals   []uint64
	readIdx    map[mem.Addr]int
	writeAddrs []mem.Addr
	writeVals  []uint64
	writeIdx   map[mem.Addr]int
}

// reset binds the reusable context to a new atomic-block instance.
func (t *Ctx) reset(rt *Runtime, c *htm.Core, ab *prog.AtomicBlock) {
	t.rt, t.c, t.ab = rt, c, ab
	t.tag = nil
	if t.readIdx == nil {
		t.readIdx = make(map[mem.Addr]int)
		t.writeIdx = make(map[mem.Addr]int)
	}
}

// beginAttempt clears the read and write sets for a fresh attempt.
func (t *Ctx) beginAttempt(locked bool) {
	t.locked = locked
	t.readAddrs = t.readAddrs[:0]
	t.readVals = t.readVals[:0]
	t.writeAddrs = t.writeAddrs[:0]
	t.writeVals = t.writeVals[:0]
	clear(t.readIdx)
	clear(t.writeIdx)
}

// Core returns the simulated core, for nontransactional side channels.
func (t *Ctx) Core() *htm.Core { return t.c }

// Op attaches the operation descriptor reported to the oracle at this
// instance's serialization point.
func (t *Ctx) Op(tag any) { t.tag = tag }

// Compute models n µ-ops of non-memory work inside the block.
func (t *Ctx) Compute(uops int) { t.c.Compute(uops) }

// Load performs the OCC load of site s at address a: own pending write
// if buffered, otherwise committed memory, logging the first read of
// each word. Repeated reads of a tracked word return the logged value,
// so one attempt never observes two versions of the same word.
func (t *Ctx) Load(s *prog.Site, a mem.Addr) uint64 {
	if r := t.rt.recorder; r != nil {
		r.RecordAccess(t.ab, s, false)
	}
	t.c.Compute(1) // read-set bookkeeping
	word := mem.WordOf(a)
	if i, ok := t.writeIdx[word]; ok {
		return t.writeVals[i]
	}
	if i, ok := t.readIdx[word]; ok {
		return t.readVals[i]
	}
	v := t.c.NTLoad(a)
	t.readIdx[word] = len(t.readAddrs)
	t.readAddrs = append(t.readAddrs, word)
	t.readVals = append(t.readVals, v)
	return v
}

// Store buffers the OCC store of site s in the write set.
func (t *Ctx) Store(s *prog.Site, a mem.Addr, v uint64) {
	if r := t.rt.recorder; r != nil {
		r.RecordAccess(t.ab, s, true)
	}
	t.c.Compute(1) // write-buffer bookkeeping
	word := mem.WordOf(a)
	if i, ok := t.writeIdx[word]; ok {
		t.writeVals[i] = v
		return
	}
	t.writeIdx[word] = len(t.writeAddrs)
	t.writeAddrs = append(t.writeAddrs, word)
	t.writeVals = append(t.writeVals, v)
}

// validate re-reads every read-set word under the commit lock and
// compares values: equality proves the whole read set is simultaneously
// valid now, making this the attempt's serialization point.
func (t *Ctx) validate(c *htm.Core) bool {
	for i, a := range t.readAddrs {
		if c.NTLoad(a) != t.readVals[i] {
			return false
		}
	}
	return true
}

// publish reports the serialization point to the observer (shadow state
// still pre-publication, matching what validation checked) and then
// publishes the write set as one atomic batch.
func (t *Ctx) publish(c *htm.Core, irrevocable bool) {
	if c.Observed() {
		c.ReportAtomic(irrevocable, t.tag, t.readsMap(), t.writesMap())
	}
	c.NTStoreBatch(t.writeAddrs, t.writeVals)
}

func (t *Ctx) readsMap() map[mem.Addr]uint64 {
	m := make(map[mem.Addr]uint64, len(t.readAddrs))
	for i, a := range t.readAddrs {
		m[a] = t.readVals[i]
	}
	return m
}

func (t *Ctx) writesMap() map[mem.Addr]uint64 {
	m := make(map[mem.Addr]uint64, len(t.writeAddrs))
	for i, a := range t.writeAddrs {
		m[a] = t.writeVals[i]
	}
	return m
}
