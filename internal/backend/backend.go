// Package backend defines the concurrency-control backend interface and
// registry: the contract a runtime must satisfy to execute the repo's
// workloads on the simulated machine, and the arena in which competing
// runtimes (plain HTM, staggered transactions, capacity-limited HTM,
// software OCC) are compared under identical workloads, serializability
// oracle, and metrics.
//
// A backend supplies per-thread execution contexts whose Atomic method
// runs an atomic-block body with whatever concurrency control the
// backend implements. The contract every backend must uphold:
//
//   - Atomicity. Each Atomic call executes its body as one atomic
//     operation: the body's Load/Store effects become visible to other
//     cores all at once, at a single serialization point, and the
//     observer (htm.TxObserver) sees exactly one OnCommit per instance
//     carrying the read and write sets at that point. This is what the
//     serializability oracle (internal/oracle) checks, so a backend
//     that cheats here fails every workload's oracle verdict.
//   - Re-execution. The body may run any number of times (speculative
//     retries, OCC validation failures); bodies are idempotent apart
//     from effects issued through the Ctx, per the usual TM contract.
//   - Determinism. All scheduling decisions must derive from simulated
//     state (core PRNGs, virtual time); a backend must not consult host
//     time, host randomness, or map iteration order. Identical configs
//     and seeds must produce identical simulations.
//   - Accounting. Commits, aborts, and useful/wasted cycle attribution
//     flow through htm.CoreStats (hardware transactions do this
//     natively; software backends use the Core's software-transaction
//     accounting calls), so internal/obs reports and the cross-backend
//     comparison table read every backend through one schema.
//
// Backends register themselves in an init function under a short name
// ("htm", "staggered", "limited", "occ"); harness, CLI flags, and
// staggerd job specs select them by that name, and the name is part of
// the result cache and journal key.
package backend

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/anchor"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/prog"
)

// Ctx is the access context a backend hands to an atomic-block body. All
// transactional data accesses go through it, so each backend can layer
// its own instrumentation (advisory-lock ALPoints, OCC read-set
// logging) over the simulated access stream.
type Ctx interface {
	// Core returns the simulated core, for nontransactional side
	// channels (e.g. labyrinth's privatizing grid snapshot).
	Core() *htm.Core
	// Op attaches an opaque operation descriptor to the current
	// atomic-block instance for the serializability oracle. A cheap
	// no-op when no oracle is installed.
	Op(tag any)
	// Compute models n µ-ops of non-memory work inside the block.
	Compute(uops int)
	// Load performs the atomic-block load of site s at address a.
	Load(s *prog.Site, a mem.Addr) uint64
	// Store performs the atomic-block store of site s.
	Store(s *prog.Site, a mem.Addr, v uint64)
}

// Thread is a backend's per-thread execution context. Each workload
// thread body obtains its own Thread and must not share it.
type Thread interface {
	// Atomic executes body as one instance of atomic block ab on core
	// c, under the backend's concurrency control. The body may be
	// re-executed; see the package contract.
	Atomic(c *htm.Core, ab *prog.AtomicBlock, body func(Ctx))
}

// Runtime is one backend instance bound to one machine: a factory for
// per-thread contexts. Implementations may expose richer concrete APIs;
// the harness reaches those through capability type assertions.
type Runtime interface {
	// Thread returns the context for core tid, creating it on first
	// use.
	Thread(tid int) Thread
}

// SiteRecorder observes dynamic site attribution: every Ctx.Load or
// Ctx.Store reports the executing atomic block, the static site the
// workload attributed the access to, and the dynamic access kind. The
// static/dynamic conformance checker implements this to detect IR
// drift.
type SiteRecorder interface {
	RecordAccess(ab *prog.AtomicBlock, s *prog.Site, isStore bool)
}

// Options carries the backend-neutral construction parameters the
// harness resolves from its run configuration. Backends read what they
// understand and ignore the rest.
type Options struct {
	// Capacity is the speculative line-capacity knob (0 = backend
	// default). The limited backend turns it into
	// htm.Config.MaxSpecLines; others ignore it.
	Capacity int
	// StaggerConfig is the advisory-lock runtime configuration the
	// harness always builds (mode, retry budget, backoff, hardening).
	// The HTM-family backends consume it wholesale; software backends
	// borrow only the shared retry-loop fields (MaxRetries,
	// BackoffBase/Exp/Cap).
	StaggerConfig any
	// SiteRecorder, when non-nil, observes every attributed access.
	SiteRecorder SiteRecorder
}

// Info describes one registered backend.
type Info struct {
	// Name is the registry key and CLI spelling.
	Name string
	// Summary is a one-line human description for listings.
	Summary string
	// Software marks backends that implement concurrency control
	// entirely in software: the harness runs them on the uninstrumented
	// baseline machine (no conflicting-PC hardware, no advisory-lock
	// anchor instrumentation).
	Software bool
	// PrepareMachine, if non-nil, adjusts the machine configuration
	// before the machine is built (e.g. the limited backend sets
	// MaxSpecLines). It runs after the harness applies its own
	// overrides.
	PrepareMachine func(cfg *htm.Config, opts Options)
	// New builds the backend's runtime on machine m. comp is the
	// anchor-compiler output for the workload module (nil only when the
	// harness could not compile, which it never is in practice).
	New func(m *htm.Machine, comp *anchor.Compiled, opts Options) (Runtime, error)
}

var registry = map[string]Info{}

// Register adds a backend under its Info.Name. It panics on a duplicate
// or empty name; backends register from init functions, so a collision
// is a programming error.
func Register(info Info) {
	if info.Name == "" {
		panic("backend: Register with empty name")
	}
	if info.New == nil {
		panic("backend: Register without a constructor: " + info.Name)
	}
	if _, dup := registry[info.Name]; dup {
		panic("backend: duplicate Register: " + info.Name)
	}
	registry[info.Name] = info
}

// Get resolves a backend by name. The error lists every registered
// backend, so CLI flag validation can surface the valid spellings
// directly.
func Get(name string) (Info, error) {
	if info, ok := registry[name]; ok {
		return info, nil
	}
	return Info{}, fmt.Errorf("unknown backend %q (registered backends: %s)",
		name, strings.Join(Names(), ", "))
}

// Names returns the registered backend names in sorted order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Summaries returns "name — summary" lines in sorted name order, for
// CLI usage text.
func Summaries() []string {
	lines := make([]string, 0, len(registry))
	for _, n := range Names() {
		lines = append(lines, n+" — "+registry[n].Summary)
	}
	return lines
}
