package anchor

import (
	"sort"

	"repro/internal/dsa"
	"repro/internal/prog"
)

// UEntry is one row of a unified (per-atomic-block) anchor table. It
// mirrors the local entry but parents and pioneers are expressed as site
// IDs resolved in the atomic block's context, so the same instruction can
// carry different parents in different atomic blocks (Section 3.3).
type UEntry struct {
	Site     *prog.Site
	IsAnchor bool
	// ParentID is the site ID of the parent anchor, 0 if none.
	ParentID uint32
	// PioneerID is, for non-anchors, the site ID of the covering anchor.
	PioneerID uint32
	// Node is the site's DSNode in the atomic block's unified universe.
	Node *dsa.Node
}

// Unified is the unified anchor table of one atomic block, indexable by
// site and by (truncated) PC as the runtime requires.
type Unified struct {
	AB      *prog.AtomicBlock
	Graph   *dsa.Graph
	Entries []*UEntry // program order across the call tree

	bySite map[uint32]*UEntry
	byPC   map[uint64][]*UEntry // truncated PC -> candidates, PC order
	pcMask uint64
}

// EntryForSite returns the entry for a site ID, or nil.
func (u *Unified) EntryForSite(id uint32) *UEntry { return u.bySite[id] }

// SearchByPC maps a truncated conflicting PC to the unique table entry it
// identifies, following the paper's runtime: the table is indexed by PC
// address. When truncation aliases several sites, the lowest-PC candidate
// is returned — a deliberate imprecision whose cost shows up as accuracy
// < 100% in Table 3. Returns nil for PCs outside the atomic block.
func (u *Unified) SearchByPC(pc uint64) *UEntry {
	cands := u.byPC[pc&u.pcMask]
	if len(cands) == 0 {
		return nil
	}
	return cands[0]
}

// AnchorFor resolves an entry to the anchor the runtime should consider:
// the entry itself when it is an anchor, otherwise its pioneer ("always
// begin with an anchor", Figure 6 line 3).
func (u *Unified) AnchorFor(e *UEntry) *UEntry {
	if e == nil {
		return nil
	}
	if e.IsAnchor {
		return e
	}
	return u.bySite[e.PioneerID]
}

// Parent returns the parent anchor entry of e, or nil.
func (u *Unified) Parent(e *UEntry) *UEntry {
	if e == nil || e.ParentID == 0 {
		return nil
	}
	return u.bySite[e.ParentID]
}

// BuildUnified merges the local tables of every function reachable from
// the atomic block into one table, resolving DSNodes in the atomic
// block's own universe (gAB) and filling parents that the local stage
// could not determine because the structure arrived via a function
// argument.
func BuildUnified(ab *prog.AtomicBlock, gAB *dsa.Graph,
	locals map[*prog.Func]*LocalTable, pcBits int) *Unified {

	u := &Unified{
		AB:     ab,
		Graph:  gAB,
		bySite: make(map[uint32]*UEntry),
		byPC:   make(map[uint64][]*UEntry),
		pcMask: (1 << pcBits) - 1,
	}
	for _, f := range prog.ReachableFuncs(ab.Root) {
		lt := locals[f]
		if lt == nil {
			continue
		}
		for _, e := range lt.Entries {
			ue := &UEntry{
				Site:     e.Site,
				IsAnchor: e.IsAnchor,
				Node:     gAB.NodeOf(e.Site),
			}
			if e.Parent != nil {
				ue.ParentID = e.Parent.Site.ID
			}
			if e.Pioneer != nil {
				ue.PioneerID = e.Pioneer.Site.ID
			}
			u.Entries = append(u.Entries, ue)
			u.bySite[e.Site.ID] = ue
		}
	}
	sort.SliceStable(u.Entries, func(i, j int) bool {
		return u.Entries[i].Site.PC < u.Entries[j].Site.PC
	})

	// Fill missing parents using the atomic block's unified DS graph: an
	// anchor on node n without a local parent gets, as parent, the first
	// anchor in the table whose node points to n.
	for _, e := range u.Entries {
		if !e.IsAnchor || e.ParentID != 0 {
			continue
		}
		for _, cand := range u.Entries {
			if !cand.IsAnchor || cand == e {
				continue
			}
			if !cand.Node.Same(e.Node) && cand.Node.PointsTo(e.Node) {
				e.ParentID = cand.Site.ID
				break
			}
		}
	}

	// PC index, candidates in ascending PC order.
	for _, e := range u.Entries {
		key := e.Site.PC & u.pcMask
		u.byPC[key] = append(u.byPC[key], e)
	}
	return u
}
