package anchor

import (
	"strings"
	"testing"

	"repro/internal/dsa"
	"repro/internal/prog"
)

// buildGenome reproduces the atomic block of Figure 3 in the paper: a
// loop fetching segments from a vector and inserting them into a hash
// table whose buckets are linked lists.
type genomeFixture struct {
	mod *prog.Module
	ab  *prog.AtomicBlock
	// Sites named after the paper's entry IDs.
	sVecSize, sVecElems *prog.Site // 51, 53
	sHTNumBucket        *prog.Site // 42
	sHTBuckets          *prog.Site // 46
	sListFirst          *prog.Site // 35
	sListNext           *prog.Site // 38
}

func buildGenome(t testing.TB) *genomeFixture {
	t.Helper()
	fx := &genomeFixture{}
	m := prog.NewModule("genome")
	fx.mod = m

	vectorAt := m.NewFunc("vector_at", "vectorPtr")
	fx.sVecSize = vectorAt.Entry().Load(vectorAt.Param(0), "size")
	elem, sElems := vectorAt.Entry().LoadPtr("elem", vectorAt.Param(0), "elements")
	fx.sVecElems = sElems
	vectorAt.SetReturn(elem)

	listFind := m.NewFunc("TMlist_find", "listPtr")
	{
		entry := listFind.Entry()
		loop := listFind.NewBlock("loop")
		exit := listFind.NewBlock("exit")
		entry.To(loop)
		loop.To(loop, exit)
		prevInit := entry.Field("prevPtr0", listFind.Param(0), "head")
		n0, s35 := entry.LoadPtr("nodePtr0", prevInit, "nextPtr")
		fx.sListFirst = s35
		cur := listFind.Phi("nodePtr")
		prev := listFind.Phi("prevPtr")
		listFind.Bind(cur, n0)
		listFind.Bind(prev, prevInit)
		listFind.Bind(prev, cur)
		n1, s38 := loop.LoadPtr("nodePtr1", cur, "nextPtr")
		fx.sListNext = s38
		listFind.Bind(cur, n1)
	}

	htInsert := m.NewFunc("TMhashtable_insert", "hashtablePtr", "data")
	fx.sHTNumBucket = htInsert.Entry().Load(htInsert.Param(0), "numBucket")
	bucket, s46 := htInsert.Entry().LoadPtr("bucket", htInsert.Param(0), "buckets")
	fx.sHTBuckets = s46
	htInsert.Entry().Call(listFind, bucket)

	root := m.NewFunc("atomic_insert_segments", "uniqueSegmentsPtr", "segmentsContentsPtr")
	{
		entry := root.Entry()
		loop := root.NewBlock("loop")
		exit := root.NewBlock("exit")
		entry.To(loop)
		loop.To(loop, exit)
		seg, _ := loop.CallPtr("segment", vectorAt, root.Param(1))
		loop.Call(htInsert, root.Param(0), seg)
	}
	fx.ab = m.Atomic("insert_segments", root)
	m.MustFinalize()
	return fx
}

func TestLocalTableVectorAt(t *testing.T) {
	fx := buildGenome(t)
	f := fx.mod.FuncByName("vector_at")
	lt := BuildLocal(f, dsa.AnalyzeFunc(f))
	eSize := lt.EntryFor(fx.sVecSize)
	eElems := lt.EntryFor(fx.sVecElems)
	if !eSize.IsAnchor {
		t.Fatal("vectorPtr->size load must be an anchor (paper entry A 51)")
	}
	if eElems.IsAnchor {
		t.Fatal("vectorPtr->elements load must be a non-anchor (paper entry 53)")
	}
	if eElems.Pioneer != eSize {
		t.Fatal("elements load's pioneer must be the size load")
	}
}

func TestLocalTableListFind(t *testing.T) {
	fx := buildGenome(t)
	f := fx.mod.FuncByName("TMlist_find")
	lt := BuildLocal(f, dsa.AnalyzeFunc(f))
	e35 := lt.EntryFor(fx.sListFirst)
	e38 := lt.EntryFor(fx.sListNext)
	if !e35.IsAnchor {
		t.Fatal("first list load must be an anchor (paper entry A 35)")
	}
	if e38.IsAnchor || e38.Pioneer != e35 {
		t.Fatal("loop reload must be a non-anchor with pioneer A 35")
	}
	if e35.Parent != nil {
		t.Fatal("A 35's parent must be unfilled in the LOCAL table (filled at unified stage)")
	}
}

func TestUnifiedTableFigure3(t *testing.T) {
	fx := buildGenome(t)
	c := Compile(fx.mod, DefaultOptions())
	u := c.Unified[fx.ab]
	if u == nil {
		t.Fatal("no unified table for atomic block")
	}
	a35 := u.EntryForSite(fx.sListFirst.ID)
	a42 := u.EntryForSite(fx.sHTNumBucket.ID)
	a51 := u.EntryForSite(fx.sVecSize.ID)
	e46 := u.EntryForSite(fx.sHTBuckets.ID)
	e38 := u.EntryForSite(fx.sListNext.ID)
	e53 := u.EntryForSite(fx.sVecElems.ID)

	// Figure 3's exact relationships.
	if !a51.IsAnchor || a51.ParentID != 0 {
		t.Errorf("A51: anchor=%v parent=%d, want anchor with parent 0", a51.IsAnchor, a51.ParentID)
	}
	if e53.IsAnchor || e53.PioneerID != fx.sVecSize.ID {
		t.Errorf("53: pioneer=%d, want %d", e53.PioneerID, fx.sVecSize.ID)
	}
	if !a42.IsAnchor || a42.ParentID != 0 {
		t.Errorf("A42: anchor=%v parent=%d, want anchor with parent 0", a42.IsAnchor, a42.ParentID)
	}
	if e46.IsAnchor || e46.PioneerID != fx.sHTNumBucket.ID {
		t.Errorf("46: pioneer=%d, want %d", e46.PioneerID, fx.sHTNumBucket.ID)
	}
	if !a35.IsAnchor {
		t.Error("A35 must be an anchor")
	}
	if a35.ParentID != fx.sHTNumBucket.ID {
		t.Errorf("A35 parent=%d, want the hashtable anchor %d (locking promotion path)",
			a35.ParentID, fx.sHTNumBucket.ID)
	}
	if e38.IsAnchor || e38.PioneerID != fx.sListFirst.ID {
		t.Errorf("38: pioneer=%d, want %d", e38.PioneerID, fx.sListFirst.ID)
	}
}

func TestCompileInstrumentsOnlyAnchors(t *testing.T) {
	fx := buildGenome(t)
	c := Compile(fx.mod, DefaultOptions())
	wantALP := map[uint32]bool{
		fx.sVecSize.ID:     true,
		fx.sHTNumBucket.ID: true,
		fx.sListFirst.ID:   true,
	}
	for id := 1; id <= fx.mod.NumSites(); id++ {
		if c.IsALP[id] != wantALP[uint32(id)] {
			t.Errorf("site %d: ALP=%v, want %v", id, c.IsALP[id], wantALP[uint32(id)])
		}
	}
	if c.StaticAccesses != 6 || c.StaticAnchors != 3 {
		t.Errorf("static stats %d/%d, want 6 accesses / 3 anchors",
			c.StaticAccesses, c.StaticAnchors)
	}
	if got := c.InstrumentedFraction(); got != 0.5 {
		t.Errorf("instrumented fraction = %v, want 0.5", got)
	}
}

func TestNaiveInstrumentsEverything(t *testing.T) {
	fx := buildGenome(t)
	opts := DefaultOptions()
	opts.Naive = true
	c := Compile(fx.mod, opts)
	for id := 1; id <= fx.mod.NumSites(); id++ {
		if !c.IsALP[id] {
			t.Errorf("naive mode: site %d not instrumented", id)
		}
	}
	if c.InstrumentedFraction() != 1.0 {
		t.Error("naive fraction must be 1.0")
	}
}

func TestSearchByPC(t *testing.T) {
	fx := buildGenome(t)
	c := Compile(fx.mod, DefaultOptions())
	u := c.Unified[fx.ab]
	e := u.SearchByPC(fx.sListNext.PC & 0xFFF)
	if e == nil || e.Site != fx.sListNext {
		t.Fatalf("SearchByPC missed site (got %v)", e)
	}
	// Resolution through AnchorFor lands on the pioneer anchor.
	a := u.AnchorFor(e)
	if a == nil || a.Site != fx.sListFirst {
		t.Fatal("AnchorFor(non-anchor) must return the pioneer anchor")
	}
	if u.SearchByPC(0xABC) != nil && fx.mod.NumSites() < 100 {
		// With only 6 sites nothing maps to an arbitrary far PC.
		t.Fatal("SearchByPC hallucinated an entry")
	}
}

func TestParentChainViaUnified(t *testing.T) {
	fx := buildGenome(t)
	c := Compile(fx.mod, DefaultOptions())
	u := c.Unified[fx.ab]
	a35 := u.EntryForSite(fx.sListFirst.ID)
	parent := u.Parent(a35)
	if parent == nil || parent.Site != fx.sHTNumBucket {
		t.Fatal("Parent(A35) must be the hashtable anchor")
	}
	if u.Parent(parent) != nil {
		t.Fatal("hashtable anchor must have no parent")
	}
}

// TestBranchAnchors: accesses on both arms of a branch are each initial
// accesses on their execution path, so both are anchors; an access after
// the merge dominated by a pre-branch access is not.
func TestBranchAnchors(t *testing.T) {
	m := prog.NewModule("branch")
	f := m.NewFunc("f", "p")
	entry := f.Entry()
	left := f.NewBlock("left")
	right := f.NewBlock("right")
	merge := f.NewBlock("merge")
	entry.To(left, right)
	left.To(merge)
	right.To(merge)
	sL := left.Load(f.Param(0), "a")
	sR := right.Load(f.Param(0), "b")
	sM := merge.Load(f.Param(0), "c")
	m.MustFinalize()
	lt := BuildLocal(f, dsa.AnalyzeFunc(f))
	if !lt.EntryFor(sL).IsAnchor || !lt.EntryFor(sR).IsAnchor {
		t.Fatal("branch-arm accesses must both be anchors")
	}
	// Neither arm dominates the merge, so the merge access is ALSO an
	// anchor (it may be the initial access on neither path... it is
	// dominated by no prior access to the node).
	if !lt.EntryFor(sM).IsAnchor {
		t.Fatal("merge access dominated by no access must be an anchor")
	}
}

func TestPreBranchAccessMakesSuccessorsNonAnchors(t *testing.T) {
	m := prog.NewModule("dom")
	f := m.NewFunc("f", "p")
	entry := f.Entry()
	next := f.NewBlock("next")
	entry.To(next)
	s1 := entry.Load(f.Param(0), "a")
	s2 := next.Load(f.Param(0), "b")
	m.MustFinalize()
	lt := BuildLocal(f, dsa.AnalyzeFunc(f))
	if !lt.EntryFor(s1).IsAnchor {
		t.Fatal("first access must be an anchor")
	}
	e2 := lt.EntryFor(s2)
	if e2.IsAnchor || e2.Pioneer != lt.EntryFor(s1) {
		t.Fatal("dominated access must be a non-anchor with the first as pioneer")
	}
}

func TestPCIndexAliasing(t *testing.T) {
	// With a tiny PC mask, distinct sites alias; SearchByPC must return
	// the lowest-PC candidate deterministically.
	m := prog.NewModule("alias")
	f := m.NewFunc("f", "p", "q")
	s1 := f.Entry().Load(f.Param(0), "a")
	s2 := f.Entry().Load(f.Param(1), "b")
	ab := m.Atomic("ab", f)
	m.MustFinalize()
	opts := Options{PCBits: 2} // instruction stride is 4: all sites alias
	c := Compile(m, opts)
	u := c.Unified[ab]
	if s1.PC&3 != s2.PC&3 {
		t.Fatal("test setup: PCs should alias under a 2-bit mask")
	}
	got := u.SearchByPC(s2.PC)
	if got == nil || got.Site != s1 {
		t.Fatalf("aliased SearchByPC must return the lowest-PC site, got %v", got)
	}
}

func TestDumpMentionsAnchors(t *testing.T) {
	fx := buildGenome(t)
	c := Compile(fx.mod, DefaultOptions())
	out := c.Dump(fx.ab)
	if !strings.Contains(out, "[ALP]") || !strings.Contains(out, "insert_segments") {
		t.Fatalf("dump missing content:\n%s", out)
	}
}

func TestUnifiedEntriesSortedByPC(t *testing.T) {
	fx := buildGenome(t)
	c := Compile(fx.mod, DefaultOptions())
	u := c.Unified[fx.ab]
	for i := 1; i < len(u.Entries); i++ {
		if u.Entries[i-1].Site.PC > u.Entries[i].Site.PC {
			t.Fatal("unified entries not in PC order")
		}
	}
}

func TestCompileDeterministic(t *testing.T) {
	parents := func() []uint32 {
		fx := buildGenome(t)
		c := Compile(fx.mod, DefaultOptions())
		u := c.Unified[fx.ab]
		out := make([]uint32, 0, len(u.Entries))
		for _, e := range u.Entries {
			out = append(out, e.ParentID, e.PioneerID)
		}
		return out
	}
	p1, p2 := parents(), parents()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("nondeterministic compile at %d: %v vs %v", i, p1, p2)
		}
	}
}
