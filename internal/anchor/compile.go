package anchor

import (
	"fmt"
	"strings"

	"repro/internal/dsa"
	"repro/internal/prog"
)

// Compiled is the full output of the staggered-transactions compiler pass
// for one module: local tables, per-atomic-block unified tables, and the
// instrumentation set (which sites carry an ALPoint call).
type Compiled struct {
	Mod     *prog.Module
	Locals  map[*prog.Func]*LocalTable
	Unified map[*prog.AtomicBlock]*Unified

	// IsALP is indexed by site ID: true when the compiler inserted an
	// advisory locking point before the site.
	IsALP []bool

	// StaticAccesses and StaticAnchors are the "Static Stats" of Table 3:
	// loads/stores analyzed in transactional functions, and how many were
	// instrumented as anchors.
	StaticAccesses int
	StaticAnchors  int
}

// Options tunes the compiler pass.
type Options struct {
	// PCBits is the width of the machine's conflicting-PC tag, used to
	// build the PC-indexed unified tables (paper: 12).
	PCBits int
	// Naive instruments every load and store instead of only anchors —
	// the baseline the paper compares against in Section 6.1.
	Naive bool
}

// DefaultOptions matches the paper's configuration.
func DefaultOptions() Options { return Options{PCBits: 12} }

// Compile runs the whole pass: bottom-up DSA and Algorithm 1 per function
// reachable from any atomic block, then one unified table per atomic
// block, then ALP insertion.
func Compile(m *prog.Module, opts Options) *Compiled {
	if !m.Finalized() {
		panic("anchor: module not finalized")
	}
	if opts.PCBits <= 0 {
		opts.PCBits = 12
	}
	c := &Compiled{
		Mod:     m,
		Locals:  make(map[*prog.Func]*LocalTable),
		Unified: make(map[*prog.AtomicBlock]*Unified),
		IsALP:   make([]bool, m.NumSites()+1),
	}
	// Local stage over every function reachable from some atomic block.
	for _, ab := range m.Atomics {
		for _, f := range prog.ReachableFuncs(ab.Root) {
			if _, done := c.Locals[f]; done {
				continue
			}
			g := dsa.AnalyzeFunc(f)
			c.Locals[f] = BuildLocal(f, g)
		}
	}
	// Unified stage per atomic block.
	for _, ab := range m.Atomics {
		gAB := dsa.AnalyzeAtomic(ab)
		c.Unified[ab] = BuildUnified(ab, gAB, c.Locals, opts.PCBits)
	}
	// Instrumentation: an ALPoint before each anchor (or before every
	// access in naive mode).
	for _, lt := range c.Locals {
		for _, e := range lt.Entries {
			c.StaticAccesses++
			if e.IsAnchor {
				c.StaticAnchors++
			}
			if e.IsAnchor || opts.Naive {
				c.IsALP[e.Site.ID] = true
			}
		}
	}
	return c
}

// UnifiedFor returns the unified table of the atomic block with the given
// ID (1-based), or nil.
func (c *Compiled) UnifiedFor(abID int) *Unified {
	for ab, u := range c.Unified {
		if ab.ID == abID {
			return u
		}
	}
	return nil
}

// InstrumentedFraction returns the fraction of analyzed loads/stores that
// carry an ALP (the "13% on average" statistic of Section 6.1).
func (c *Compiled) InstrumentedFraction() float64 {
	if c.StaticAccesses == 0 {
		return 0
	}
	n := 0
	for _, v := range c.IsALP {
		if v {
			n++
		}
	}
	return float64(n) / float64(c.StaticAccesses)
}

// Dump renders the unified table of one atomic block in the style of
// Figure 3 of the paper, for debugging and the anchordump tool.
func (c *Compiled) Dump(ab *prog.AtomicBlock) string {
	u := c.Unified[ab]
	var b strings.Builder
	fmt.Fprintf(&b, "atomic block %d %q (root %s)\n", ab.ID, ab.Name, ab.Root.Name)
	for _, e := range u.Entries {
		mark := " "
		if e.IsAnchor {
			mark = "A"
		}
		fmt.Fprintf(&b, "  %s %3d pc=%#06x %-40s node=%-18s", mark, e.Site.ID, e.Site.PC, e.Site, e.Node.Label())
		switch {
		case e.IsAnchor:
			fmt.Fprintf(&b, " parent=%d", e.ParentID)
		default:
			fmt.Fprintf(&b, " pioneer=%d", e.PioneerID)
		}
		if c.IsALP[e.Site.ID] {
			b.WriteString("  [ALP]")
		}
		b.WriteByte('\n')
	}
	return b.String()
}
