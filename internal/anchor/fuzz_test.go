package anchor

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dsa"
	"repro/internal/prog"
)

// randomModule generates a random but well-formed IR module: a handful of
// functions with random CFGs, random load/store sites over parameters and
// loaded pointers, random non-recursive calls, and 1-3 atomic blocks.
func randomModule(rng *rand.Rand) *prog.Module {
	m := prog.NewModule("fuzz")
	nFuncs := 2 + rng.Intn(4)
	funcs := make([]*prog.Func, nFuncs)
	fields := []string{"a", "b", "next", "child", "val"}

	for i := 0; i < nFuncs; i++ {
		nParams := 1 + rng.Intn(3)
		params := make([]string, nParams)
		for p := range params {
			params[p] = fmt.Sprintf("p%d", p)
		}
		f := m.NewFunc(fmt.Sprintf("f%d", i), params...)
		funcs[i] = f

		// Random CFG: a chain with optional diamonds and back edges.
		blocks := []*prog.Block{f.Entry()}
		nBlocks := 1 + rng.Intn(4)
		for b := 1; b < nBlocks; b++ {
			blocks = append(blocks, f.NewBlock(fmt.Sprintf("b%d", b)))
		}
		for b := 1; b < nBlocks; b++ {
			blocks[rng.Intn(b)].To(blocks[b])
			if rng.Intn(3) == 0 {
				blocks[b].To(blocks[rng.Intn(nBlocks)])
			}
		}

		// Random accesses: pool of pointer values grows as loads define
		// new pointers.
		vals := make([]*prog.Value, nParams)
		copy(vals, f.Params)
		nAcc := 1 + rng.Intn(8)
		for a := 0; a < nAcc; a++ {
			blk := blocks[rng.Intn(len(blocks))]
			ptr := vals[rng.Intn(len(vals))]
			field := fields[rng.Intn(len(fields))]
			switch rng.Intn(3) {
			case 0:
				blk.Load(ptr, field)
			case 1:
				blk.Store(ptr, field)
			default:
				v, _ := blk.LoadPtr(fmt.Sprintf("v%d_%d", i, a), ptr, field)
				vals = append(vals, v)
			}
		}
		// Random calls to earlier functions only (acyclic by construction).
		if i > 0 && rng.Intn(2) == 0 {
			callee := funcs[rng.Intn(i)]
			args := make([]*prog.Value, len(callee.Params))
			for ai := range args {
				args[ai] = vals[rng.Intn(len(vals))]
			}
			blocks[rng.Intn(len(blocks))].Call(callee, args...)
		}
	}
	nABs := 1 + rng.Intn(3)
	for i := 0; i < nABs && i < nFuncs; i++ {
		m.Atomic(fmt.Sprintf("ab%d", i), funcs[nFuncs-1-i])
	}
	m.MustFinalize()
	return m
}

// TestCompileRandomPrograms pushes hundreds of random programs through
// DSA + Algorithm 1 + unified-table construction and checks structural
// invariants that must hold for ANY program:
//
//  1. every reachable site is classified, exactly once;
//  2. every non-anchor has an anchor pioneer on the same DSNode that
//     dominates it;
//  3. anchors never have pioneers; parents are anchors, never self;
//  4. the PC index finds every site of the atomic block;
//  5. naive mode instruments a superset of DSA mode.
func TestCompileRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 300; trial++ {
		m := randomModule(rng)
		c := Compile(m, DefaultOptions())
		naive := Compile(m, Options{PCBits: 12, Naive: true})

		for f, lt := range c.Locals {
			g := dsa.AnalyzeFunc(f)
			seen := map[*prog.Site]bool{}
			for _, e := range lt.Entries {
				if seen[e.Site] {
					t.Fatalf("trial %d: site %d classified twice", trial, e.Site.ID)
				}
				seen[e.Site] = true
				if e.IsAnchor {
					if e.Pioneer != nil {
						t.Fatalf("trial %d: anchor %d has a pioneer", trial, e.Site.ID)
					}
					if e.Parent == e {
						t.Fatalf("trial %d: anchor %d is its own parent", trial, e.Site.ID)
					}
					if e.Parent != nil && !e.Parent.IsAnchor {
						t.Fatalf("trial %d: parent of %d is not an anchor", trial, e.Site.ID)
					}
				} else {
					p := e.Pioneer
					if p == nil || !p.IsAnchor {
						t.Fatalf("trial %d: non-anchor %d lacks an anchor pioneer", trial, e.Site.ID)
					}
					if !g.NodeOf(p.Site).Same(g.NodeOf(e.Site)) {
						t.Fatalf("trial %d: pioneer of %d on a different DSNode", trial, e.Site.ID)
					}
					if !prog.InstrDominates(p.Site.Instr, e.Site.Instr) {
						t.Fatalf("trial %d: pioneer %d does not dominate %d",
							trial, p.Site.ID, e.Site.ID)
					}
				}
			}
			// Reachable sites of the function all classified.
			for _, s := range f.Sites() {
				if reachableBlock(f, s.Instr.Block) && !seen[s] {
					t.Fatalf("trial %d: reachable site %d unclassified", trial, s.ID)
				}
			}
		}

		for ab, u := range c.Unified {
			for _, e := range u.Entries {
				if got := u.SearchByPC(e.Site.PC); got == nil {
					t.Fatalf("trial %d: ab %d: SearchByPC missed site %d", trial, ab.ID, e.Site.ID)
				}
				if a := u.AnchorFor(e); a == nil || !a.IsAnchor {
					t.Fatalf("trial %d: AnchorFor(%d) not an anchor", trial, e.Site.ID)
				}
				if e.ParentID == e.Site.ID {
					t.Fatalf("trial %d: unified self-parent at %d", trial, e.Site.ID)
				}
			}
		}

		for id := 1; id <= m.NumSites(); id++ {
			if c.IsALP[id] && !naive.IsALP[id] {
				t.Fatalf("trial %d: DSA instrumented site %d but naive did not", trial, id)
			}
		}
	}
}

func reachableBlock(f *prog.Func, b *prog.Block) bool {
	seen := map[*prog.Block]bool{f.Entry(): true}
	stack := []*prog.Block{f.Entry()}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == b {
			return true
		}
		for _, s := range n.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// TestCompileRandomDeterministic: compiling the same random program twice
// yields identical classifications and parents.
func TestCompileRandomDeterministic(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		build := func() *prog.Module {
			return randomModule(rand.New(rand.NewSource(int64(5000 + trial))))
		}
		c1 := Compile(build(), DefaultOptions())
		c2 := Compile(build(), DefaultOptions())
		if len(c1.IsALP) != len(c2.IsALP) {
			t.Fatal("site counts differ")
		}
		for i := range c1.IsALP {
			if c1.IsALP[i] != c2.IsALP[i] {
				t.Fatalf("trial %d: ALP set differs at site %d", trial, i)
			}
		}
		if c1.StaticAnchors != c2.StaticAnchors {
			t.Fatalf("trial %d: anchor counts differ", trial)
		}
	}
}
