// Package anchor implements the staggered-transactions compiler pass:
// selection of advisory-locking-point anchors (Algorithm 1 of the paper),
// construction of per-function local anchor tables and per-atomic-block
// unified anchor tables, and the PC-indexed lookup the runtime uses to
// map a conflicting PC back to an anchor.
package anchor

import (
	"fmt"
	"sort"

	"repro/internal/dsa"
	"repro/internal/prog"
)

// Entry is one row of a local anchor table (the paper's ATEntry): a
// load/store instruction, whether it is an anchor (the initial access to
// its DSNode on some execution path), its parent anchor (the anchor of a
// node through which this node is reached), and — for non-anchors — the
// pioneer anchor that covers the same node.
type Entry struct {
	Site     *prog.Site
	IsAnchor bool
	Parent   *Entry
	Pioneer  *Entry
	Node     *dsa.Node
}

func (e *Entry) String() string {
	switch {
	case e.IsAnchor && e.Parent != nil:
		return fmt.Sprintf("A %d: Parent %d", e.Site.ID, e.Parent.Site.ID)
	case e.IsAnchor:
		return fmt.Sprintf("A %d: Parent 0", e.Site.ID)
	case e.Pioneer != nil:
		return fmt.Sprintf("  %d: Pioneer %d", e.Site.ID, e.Pioneer.Site.ID)
	default:
		return fmt.Sprintf("  %d:", e.Site.ID)
	}
}

// LocalTable holds the anchor classification of one function.
type LocalTable struct {
	Fn      *prog.Func
	Entries []*Entry // program order
	bySite  map[*prog.Site]*Entry
}

// EntryFor returns the table entry of a site, or nil.
func (t *LocalTable) EntryFor(s *prog.Site) *Entry { return t.bySite[s] }

// Anchors returns the anchor entries in program order.
func (t *LocalTable) Anchors() []*Entry {
	var out []*Entry
	for _, e := range t.Entries {
		if e.IsAnchor {
			out = append(out, e)
		}
	}
	return out
}

// BuildLocal runs Algorithm 1 on one function using its bottom-up DSA
// graph: a depth-first walk of the dominator tree classifies each
// load/store as anchor or non-anchor, then DS-graph edges fill in parent
// links between anchors of connected nodes.
func BuildLocal(f *prog.Func, g *dsa.Graph) *LocalTable {
	t := &LocalTable{Fn: f, bySite: make(map[*prog.Site]*Entry)}
	perNode := make(map[*dsa.Node][]*Entry)

	// Stage 1: anchor classification over the dominator tree. Visiting in
	// dominator-tree DFS order guarantees that when we test "some earlier
	// entry on this node dominates me", all candidate dominators have
	// already been visited.
	kids := prog.DomTreeChildren(f)
	var visit func(b *prog.Block)
	visit = func(b *prog.Block) {
		for _, in := range b.Instrs {
			if in.Kind != prog.InstrAccess {
				continue
			}
			s := in.Site
			node := g.NodeOf(s)
			e := &Entry{Site: s, Node: node}
			for _, m := range perNode[node] {
				if prog.InstrDominates(m.Site.Instr, in) {
					e.IsAnchor = false
					if m.IsAnchor {
						e.Pioneer = m
					} else {
						e.Pioneer = m.Pioneer
					}
					break
				}
			}
			if e.Pioneer == nil {
				e.IsAnchor = true
			}
			perNode[node] = append(perNode[node], e)
			t.Entries = append(t.Entries, e)
			t.bySite[s] = e
		}
		for _, k := range kids[b] {
			visit(k)
		}
	}
	visit(f.Entry())

	// Keep entries in program order regardless of dominator-tree visit
	// order (determinism for printing and tests).
	sort.SliceStable(t.Entries, func(i, j int) bool {
		return t.Entries[i].Site.PC < t.Entries[j].Site.PC
	})

	// Stage 2: parent links. For each node n with an edge to node m, the
	// anchors of m get the (first) anchor of n as parent. Self edges are
	// skipped: a recursive structure's node is not its own parent — its
	// parent is whatever points to the structure from outside, which may
	// only be known in the unified table.
	nodes := make([]*dsa.Node, 0, len(perNode))
	for n := range perNode {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID() < nodes[j].ID() })
	for _, n := range nodes {
		src := firstAnchor(perNode[n])
		if src == nil {
			continue
		}
		for _, m := range n.Edges() {
			if m.Same(n) {
				continue
			}
			for _, e := range perNode[m] {
				if e.IsAnchor && e.Parent == nil && e != src {
					e.Parent = src
				}
			}
		}
	}
	return t
}

func firstAnchor(entries []*Entry) *Entry {
	best := (*Entry)(nil)
	for _, e := range entries {
		if e.IsAnchor && (best == nil || e.Site.PC < best.Site.PC) {
			best = e
		}
	}
	return best
}
