package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// This file is the disk-fault sibling of the simulator's fault injector:
// a seeded, deterministic failpoint registry for the durable layers
// (internal/store, internal/journal) reached through the vfs.FaultFS
// filesystem seam. Where the Injector above perturbs the simulated
// machine, Failpoints perturb the host I/O the daemon depends on for
// crash safety — short writes, failed fsyncs, a full disk, and the
// process dying right after a write lands. Every decision is either a
// counted one-shot ("the Nth matching operation") or a draw from a
// per-failpoint splitmix64 stream, so a fault schedule is exactly
// reproducible from its spec string and seed.

// FPAction is what an armed failpoint does to the I/O operation that
// tripped it.
type FPAction int

const (
	// FPNone leaves the operation alone.
	FPNone FPAction = iota
	// FPError fails the operation with a generic injected I/O error
	// (the fsync-returned-EIO case: the bytes' fate is unknown).
	FPError
	// FPENOSPC fails the operation with an injected "no space left on
	// device".
	FPENOSPC
	// FPShort lets roughly half of a write land, then fails it — the
	// torn-write case rename atomicity and CRC framing must absorb.
	FPShort
	// FPCrash lets the operation complete, then kills the process (or
	// wedges the filesystem, under test): the post-write crash window.
	FPCrash
)

// String names the action as it appears in spec strings.
func (a FPAction) String() string {
	switch a {
	case FPError:
		return "error"
	case FPENOSPC:
		return "enospc"
	case FPShort:
		return "short"
	case FPCrash:
		return "crash"
	default:
		return "none"
	}
}

func parseFPAction(s string) (FPAction, error) {
	switch s {
	case "error":
		return FPError, nil
	case "enospc":
		return FPENOSPC, nil
	case "short":
		return FPShort, nil
	case "crash":
		return FPCrash, nil
	default:
		return FPNone, fmt.Errorf("unknown failpoint action %q (want error|enospc|short|crash)", s)
	}
}

// failpoint is one armed injection site.
type failpoint struct {
	op     string // operation class: write, sync, create, rename, remove, truncate, open
	sub    string // "" or a path substring filter
	action FPAction
	nth    uint64  // one-shot mode: fire on exactly the nth matching hit (1-based)
	rate   float64 // seeded mode: per-hit probability (nth == 0)
	stream uint64  // splitmix64 state for seeded mode
	hits   uint64
	fired  uint64
}

func (p *failpoint) spec() string {
	s := p.op
	if p.sub != "" {
		s += ":" + p.sub
	}
	s += "=" + p.action.String()
	if p.nth > 0 {
		return s + "@" + strconv.FormatUint(p.nth, 10)
	}
	return s + "%" + strconv.FormatFloat(p.rate, 'g', -1, 64)
}

// Failpoints is a set of armed failpoints, safe for concurrent
// evaluation. The zero value (and a nil *Failpoints) injects nothing.
type Failpoints struct {
	mu  sync.Mutex
	pts []*failpoint
}

// ParseFailpoints parses a failpoint spec string:
//
//	spec     := clause (';' clause)*
//	clause   := op [':' pathsub] '=' action ('@' n | '%' rate)
//	op       := write | sync | create | rename | remove | truncate | open
//	action   := error | enospc | short | crash
//
// '@n' fires on exactly the nth matching operation (1-based, counted
// deterministically per failpoint); '%rate' fires each matching
// operation with the given probability, drawn from a splitmix64 stream
// derived from seed and the clause's position, so the whole schedule is
// reproducible from (spec, seed). The optional pathsub filters by
// substring of the operation's file path ("jobs.wal", "objects", ...).
// An empty spec yields an empty (inert) set.
func ParseFailpoints(spec string, seed int64) (*Failpoints, error) {
	f := &Failpoints{}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return f, nil
	}
	for i, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		site, rhs, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("failpoint %q: missing '='", clause)
		}
		op, sub, _ := strings.Cut(site, ":")
		switch op {
		case "write", "sync", "create", "rename", "remove", "truncate", "open":
		default:
			return nil, fmt.Errorf("failpoint %q: unknown op %q", clause, op)
		}
		p := &failpoint{op: op, sub: sub}
		var actStr string
		switch {
		case strings.Contains(rhs, "@"):
			var nStr string
			actStr, nStr, _ = strings.Cut(rhs, "@")
			n, err := strconv.ParseUint(nStr, 10, 64)
			if err != nil || n == 0 {
				return nil, fmt.Errorf("failpoint %q: bad count %q", clause, nStr)
			}
			p.nth = n
		case strings.Contains(rhs, "%"):
			var rStr string
			actStr, rStr, _ = strings.Cut(rhs, "%")
			r, err := strconv.ParseFloat(rStr, 64)
			if err != nil || r < 0 || r > 1 {
				return nil, fmt.Errorf("failpoint %q: bad rate %q", clause, rStr)
			}
			p.rate = r
			// A distinct, well-mixed stream per clause; the +1 keeps seed 0
			// and clause 0 away from the splitmix fixed point at state 0.
			p.stream = mix64(uint64(seed)*0x9e3779b97f4a7c15 + uint64(i) + 1)
		default:
			return nil, fmt.Errorf("failpoint %q: need '@n' or '%%rate'", clause)
		}
		act, err := parseFPAction(actStr)
		if err != nil {
			return nil, fmt.Errorf("failpoint %q: %w", clause, err)
		}
		p.action = act
		f.pts = append(f.pts, p)
	}
	return f, nil
}

// Eval records one I/O operation against the set and returns the action
// to inject (FPNone almost always). Every matching failpoint counts the
// hit — so '@n' positions stay deterministic even when several clauses
// watch one op — and the first one that fires wins.
func (f *Failpoints) Eval(op, path string) FPAction {
	if f == nil {
		return FPNone
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	act := FPNone
	for _, p := range f.pts {
		if p.op != op || (p.sub != "" && !strings.Contains(path, p.sub)) {
			continue
		}
		p.hits++
		fire := false
		if p.nth > 0 {
			fire = p.hits == p.nth
		} else if p.rate > 0 {
			p.stream += 0x9e3779b97f4a7c15
			fire = float64(mix64(p.stream)>>11)/float64(1<<53) < p.rate
		}
		if fire {
			p.fired++
			if act == FPNone {
				act = p.action
			}
		}
	}
	return act
}

// FPStat reports one failpoint's traffic.
type FPStat struct {
	Spec  string
	Hits  uint64
	Fired uint64
}

// Report snapshots every failpoint's hit and fire counts, in spec order.
func (f *Failpoints) Report() []FPStat {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FPStat, len(f.pts))
	for i, p := range f.pts {
		out[i] = FPStat{Spec: p.spec(), Hits: p.hits, Fired: p.fired}
	}
	return out
}

// Enabled reports whether any failpoint is armed.
func (f *Failpoints) Enabled() bool { return f != nil && len(f.pts) > 0 }
