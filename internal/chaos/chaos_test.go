package chaos

import (
	"testing"

	"repro/internal/htm"
)

func TestEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	if !(Config{AbortRate: 0.1}).Enabled() {
		t.Error("abort-rate config reports disabled")
	}
	if !Scaled(0.01, 1).Enabled() {
		t.Error("Scaled(0.01) reports disabled")
	}
	if Scaled(0, 1).Enabled() {
		t.Error("Scaled(0) reports enabled")
	}
}

// TestDeterministicStreams: two injectors with the same config must answer
// an identical query sequence identically, and a different seed must
// (for this sequence) diverge.
func TestDeterministicStreams(t *testing.T) {
	cfg := Scaled(0.05, 7)
	a := NewInjector(cfg, 4)
	b := NewInjector(cfg, 4)
	other := cfg
	other.Seed = 8
	c := NewInjector(other, 4)
	diverged := false
	for i := 0; i < 4000; i++ {
		core := i % 4
		now := uint64(i) * 3
		ra, oka := a.SpuriousAbort(core, now)
		rb, okb := b.SpuriousAbort(core, now)
		if ra != rb || oka != okb {
			t.Fatalf("query %d: same-seed injectors diverged", i)
		}
		if a.NTDelay(core, now) != b.NTDelay(core, now) {
			t.Fatalf("query %d: NTDelay diverged", i)
		}
		if a.StallJitter(core, now) != b.StallJitter(core, now) {
			t.Fatalf("query %d: StallJitter diverged", i)
		}
		if a.DropLockRelease(core) != b.DropLockRelease(core) {
			t.Fatalf("query %d: DropLockRelease diverged", i)
		}
		_, okc := c.SpuriousAbort(core, now)
		c.NTDelay(core, now)
		c.StallJitter(core, now)
		c.DropLockRelease(core)
		if okc != oka {
			diverged = true
		}
	}
	if a.Counts() != b.Counts() {
		t.Fatalf("same-seed counts differ: %+v vs %+v", a.Counts(), b.Counts())
	}
	if a.Counts().Total() == 0 {
		t.Fatal("rate 0.05 over 16k draws fired nothing")
	}
	if !diverged {
		t.Error("different seeds produced identical abort schedules")
	}
}

// TestRateExtremes: rate 0 never fires (and does not advance counts);
// rate 1 always fires.
func TestRateExtremes(t *testing.T) {
	never := NewInjector(Config{Seed: 3}, 1)
	always := NewInjector(Config{
		AbortRate: 1, NTDelayRate: 1, NTDelayCycles: 10,
		LockDropRate: 1, JitterRate: 1, JitterCycles: 5, Seed: 3,
	}, 1)
	for i := 0; i < 100; i++ {
		if _, ok := never.SpuriousAbort(0, 0); ok {
			t.Fatal("rate-0 injector fired an abort")
		}
		if never.NTDelay(0, 0) != 0 || never.StallJitter(0, 0) != 0 || never.DropLockRelease(0) {
			t.Fatal("rate-0 injector fired")
		}
		if _, ok := always.SpuriousAbort(0, 0); !ok {
			t.Fatal("rate-1 injector skipped an abort")
		}
		if always.NTDelay(0, 0) != 10 || always.StallJitter(0, 0) != 5 || !always.DropLockRelease(0) {
			t.Fatal("rate-1 injector skipped")
		}
	}
	if got := never.Counts().Total(); got != 0 {
		t.Fatalf("rate-0 counts = %d", got)
	}
	want := Counts{Aborts: 100, NTDelays: 100, LockDrops: 100, Jitters: 100}
	if got := always.Counts(); got != want {
		t.Fatalf("rate-1 counts = %+v, want %+v", got, want)
	}
}

// TestAbortCodeDefault: the zero AbortCode maps to AbortSpurious; an
// explicit code is passed through.
func TestAbortCodeDefault(t *testing.T) {
	in := NewInjector(Config{AbortRate: 1}, 1)
	if r, ok := in.SpuriousAbort(0, 0); !ok || r != htm.AbortSpurious {
		t.Fatalf("default abort code = %v (fired=%v), want spurious", r, ok)
	}
	in = NewInjector(Config{AbortRate: 1, AbortCode: htm.AbortConflict}, 1)
	if r, _ := in.SpuriousAbort(0, 0); r != htm.AbortConflict {
		t.Fatalf("abort code = %v, want conflict", r)
	}
}

// TestPerCoreStreamsIndependent: one core's query volume must not shift
// another core's schedule (each core has its own stream).
func TestPerCoreStreamsIndependent(t *testing.T) {
	cfg := Config{AbortRate: 0.2, Seed: 11}
	a := NewInjector(cfg, 2)
	b := NewInjector(cfg, 2)
	// Burn 1000 extra draws on core 0 of a only.
	for i := 0; i < 1000; i++ {
		a.SpuriousAbort(0, 0)
	}
	for i := 0; i < 200; i++ {
		_, oka := a.SpuriousAbort(1, 0)
		_, okb := b.SpuriousAbort(1, 0)
		if oka != okb {
			t.Fatalf("draw %d: core-1 schedule shifted by core-0 traffic", i)
		}
	}
}
