package chaos

import (
	"strings"
	"testing"
)

func TestParseFailpointsGrammar(t *testing.T) {
	good := []string{
		"",
		"write=error@1",
		"sync:jobs.wal=crash@2",
		"write=short@1;sync=error@3",
		"create:objects=enospc%0.25",
		"truncate=error@1; remove=enospc@2 ;open=short@1",
	}
	for _, spec := range good {
		if _, err := ParseFailpoints(spec, 1); err != nil {
			t.Errorf("ParseFailpoints(%q) = %v, want nil", spec, err)
		}
	}
	bad := map[string]string{
		"write":            "missing '='",
		"frobnicate=err@1": "unknown op",
		"write=explode@1":  "unknown failpoint action",
		"write=error":      "need '@n' or '%rate'",
		"write=error@0":    "bad count",
		"write=error@x":    "bad count",
		"write=error%1.5":  "bad rate",
		"write=error%-1":   "bad rate",
	}
	for spec, frag := range bad {
		_, err := ParseFailpoints(spec, 1)
		if err == nil || !strings.Contains(err.Error(), frag) {
			t.Errorf("ParseFailpoints(%q) = %v, want error containing %q", spec, err, frag)
		}
	}
}

func TestFailpointNthFiresExactlyOnce(t *testing.T) {
	fp, err := ParseFailpoints("write:wal=error@3", 0)
	if err != nil {
		t.Fatal(err)
	}
	var got []FPAction
	for i := 0; i < 6; i++ {
		got = append(got, fp.Eval("write", "/x/jobs.wal"))
	}
	want := []FPAction{FPNone, FPNone, FPError, FPNone, FPNone, FPNone}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d: got %v, want %v (all: %v)", i+1, got[i], want[i], got)
		}
	}
	rep := fp.Report()
	if len(rep) != 1 || rep[0].Hits != 6 || rep[0].Fired != 1 {
		t.Fatalf("report = %+v, want 6 hits / 1 fired", rep)
	}
	if rep[0].Spec != "write:wal=error@3" {
		t.Fatalf("spec round-trip = %q", rep[0].Spec)
	}
}

func TestFailpointFiltersOpAndPath(t *testing.T) {
	fp, err := ParseFailpoints("sync:jobs.wal=crash@1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if a := fp.Eval("write", "/d/jobs.wal"); a != FPNone {
		t.Fatalf("wrong op fired: %v", a)
	}
	if a := fp.Eval("sync", "/d/objects/ab/cd"); a != FPNone {
		t.Fatalf("wrong path fired: %v", a)
	}
	if a := fp.Eval("sync", "/d/jobs.wal"); a != FPCrash {
		t.Fatalf("matching op+path: got %v, want FPCrash", a)
	}
}

// Multiple clauses watching one op must count hits independently, so a
// '@n' position cannot shift when another clause is added — the property
// that makes crash-harness specs stable.
func TestFailpointHitCountingIsPerClause(t *testing.T) {
	fp, err := ParseFailpoints("write=short@2;write=error@4", 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []FPAction{FPNone, FPShort, FPNone, FPError, FPNone}
	for i, w := range want {
		if a := fp.Eval("write", "f"); a != w {
			t.Fatalf("hit %d: got %v, want %v", i+1, a, w)
		}
	}
}

func TestFailpointSeededRateDeterministic(t *testing.T) {
	run := func(seed int64) []FPAction {
		fp, err := ParseFailpoints("write=error%0.5", seed)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]FPAction, 64)
		for i := range out {
			out[i] = fp.Eval("write", "f")
		}
		return out
	}
	a, b := run(7), run(7)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
		if a[i] == FPError {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("rate 0.5 fired %d/%d times; stream looks degenerate", fired, len(a))
	}
	c := run(8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced an identical schedule")
	}
}

func TestFailpointsNilAndEmptyAreInert(t *testing.T) {
	var nilFP *Failpoints
	if a := nilFP.Eval("write", "f"); a != FPNone {
		t.Fatalf("nil registry injected %v", a)
	}
	if nilFP.Enabled() || nilFP.Report() != nil {
		t.Fatal("nil registry reports armed state")
	}
	empty, err := ParseFailpoints("  ", 0)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Enabled() {
		t.Fatal("empty spec is armed")
	}
	if a := empty.Eval("sync", "f"); a != FPNone {
		t.Fatalf("empty registry injected %v", a)
	}
}
