// Package chaos provides deterministic, seeded fault injection for the
// HTM simulator and the staggered-transactions runtime.
//
// The paper's central safety argument is that advisory locks are
// *advisory*: a lost, stale, or never-released lock word may cost
// performance but never correctness or progress. This package exercises
// that claim. An Injector implements htm.FaultInjector (spurious
// transaction aborts, transient NT-store delays, per-core stall jitter)
// and stagger's LockFaults (advisory-lock releases lost because "the
// holder died"), drawing every decision from per-core splitmix64 streams
// seeded by the configuration. Because the simulator serializes all
// globally visible events by virtual time, the injector is only ever
// consulted at deterministic points in a deterministic order, so the
// entire fault schedule — and therefore the whole run — is exactly
// reproducible from (seed, config).
package chaos

import (
	"repro/internal/htm"
)

// Config selects fault classes and rates. The zero value injects nothing.
type Config struct {
	// AbortRate is the probability, per transactional memory event, of a
	// spurious abort (interrupts, capacity aliasing, and other
	// best-effort-HTM noise).
	AbortRate float64
	// AbortCode is the architectural abort reason injected (zero value:
	// htm.AbortSpurious). Setting it to htm.AbortConflict stresses the
	// locking policy with causeless conflict reports.
	AbortCode htm.AbortReason
	// NTDelayRate is the probability, per nontransactional store or CAS,
	// of a transient delay of NTDelayCycles.
	NTDelayRate   float64
	NTDelayCycles uint64
	// LockDropRate is the probability that an advisory-lock release is
	// lost — the holder "dies" without releasing, leaving a stale owner
	// (and lease stamp) in the lock word.
	LockDropRate float64
	// JitterRate is the probability, per memory event, of a per-core
	// stall of JitterCycles (scheduling noise).
	JitterRate   float64
	JitterCycles uint64
	// Seed seeds the injector's per-core streams. Zero is a valid,
	// distinct seed: fault schedules are a pure function of (Seed, rates).
	Seed int64
}

// Enabled reports whether any fault class has a nonzero rate.
func (c Config) Enabled() bool {
	return c.AbortRate > 0 || c.NTDelayRate > 0 || c.LockDropRate > 0 || c.JitterRate > 0
}

// Scaled returns the standard campaign mix with every fault class scaled
// by rate: at rate r, spurious aborts and NT delays fire with probability
// r, stall jitter with r, and lock releases are lost with probability r.
func Scaled(rate float64, seed int64) Config {
	return Config{
		AbortRate:     rate,
		NTDelayRate:   rate,
		NTDelayCycles: 300,
		LockDropRate:  rate,
		JitterRate:    rate,
		JitterCycles:  60,
		Seed:          seed,
	}
}

// Counts reports how many faults of each class an injector delivered.
type Counts struct {
	Aborts, NTDelays, LockDrops, Jitters uint64
}

// Total sums all fault classes.
func (c Counts) Total() uint64 { return c.Aborts + c.NTDelays + c.LockDrops + c.Jitters }

// Injector is a deterministic fault source for one simulation run. It is
// single-use, like the machine it is installed on. The engine's token
// discipline serializes all calls, and each core draws from its own
// stream, so no locking is needed.
type Injector struct {
	cfg       Config
	abortCode htm.AbortReason
	streams   []uint64 // per-core splitmix64 states
	counts    []Counts // per-core, summed by Counts()
}

// NewInjector builds an injector for a machine with the given core count.
func NewInjector(cfg Config, cores int) *Injector {
	in := &Injector{
		cfg:       cfg,
		abortCode: cfg.AbortCode,
		streams:   make([]uint64, cores),
		counts:    make([]Counts, cores),
	}
	if in.abortCode == htm.AbortNone {
		in.abortCode = htm.AbortSpurious
	}
	for i := range in.streams {
		// Distinct, well-mixed stream per core; the +1 keeps seed 0 and
		// core 0 away from the splitmix fixed point at state 0.
		in.streams[i] = mix64(uint64(cfg.Seed)*0x9e3779b97f4a7c15 + uint64(i) + 1)
	}
	return in
}

// next advances core's stream (splitmix64).
func (in *Injector) next(core int) uint64 {
	in.streams[core] += 0x9e3779b97f4a7c15
	return mix64(in.streams[core])
}

// hit draws one value from core's stream and compares it against rate.
// Every query consumes exactly one draw regardless of outcome, so the
// stream position depends only on how many times each hook ran.
func (in *Injector) hit(core int, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		in.next(core)
		return true
	}
	return float64(in.next(core)>>11)/float64(1<<53) < rate
}

// SpuriousAbort implements htm.FaultInjector.
func (in *Injector) SpuriousAbort(core int, now uint64) (htm.AbortReason, bool) {
	if !in.hit(core, in.cfg.AbortRate) {
		return htm.AbortNone, false
	}
	in.counts[core].Aborts++
	return in.abortCode, true
}

// NTDelay implements htm.FaultInjector.
func (in *Injector) NTDelay(core int, now uint64) uint64 {
	if !in.hit(core, in.cfg.NTDelayRate) {
		return 0
	}
	in.counts[core].NTDelays++
	return in.cfg.NTDelayCycles
}

// StallJitter implements htm.FaultInjector.
func (in *Injector) StallJitter(core int, now uint64) uint64 {
	if !in.hit(core, in.cfg.JitterRate) {
		return 0
	}
	in.counts[core].Jitters++
	return in.cfg.JitterCycles
}

// DropLockRelease implements stagger.LockFaults: when true, the runtime
// skips the release of one advisory lock, modeling a holder that died
// (or was descheduled indefinitely) while holding it.
func (in *Injector) DropLockRelease(core int) bool {
	if !in.hit(core, in.cfg.LockDropRate) {
		return false
	}
	in.counts[core].LockDrops++
	return true
}

// Counts sums delivered faults across cores.
func (in *Injector) Counts() Counts {
	var t Counts
	for _, c := range in.counts {
		t.Aborts += c.Aborts
		t.NTDelays += c.NTDelays
		t.LockDrops += c.LockDrops
		t.Jitters += c.Jitters
	}
	return t
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// statically assert the htm hook contract.
var _ htm.FaultInjector = (*Injector)(nil)
