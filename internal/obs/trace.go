package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/htm"
	"repro/internal/mem"
)

// Chrome trace-event export. The output is the JSON Object Format of the
// Trace Event specification, which Perfetto and chrome://tracing load
// directly: a top-level object with "traceEvents" plus "otherData" run
// tags. The mapping from the engine's virtual-time stream:
//
//   - each simulated core is a thread (tid = core id) in one process,
//     named by M metadata events;
//   - a transaction attempt is a duration slice: ph "B" at TraceBegin,
//     ph "E" at TraceCommit/TraceAbort, with the outcome and abort
//     details in the E event's args;
//   - an abort caused by another core gets a flow arrow (ph "s" on the
//     killer core's timeline, ph "f" on the victim's) so the causality
//     reads as an arrow between timelines;
//   - an advisory-lock holding period is an async interval (ph "b"/"e",
//     category "ablock", id = lock address) — async because locks are
//     released after the owning transaction's E slice closes, so a
//     nested B/E pair would be malformed;
//   - irrevocable (global-lock) sections are duration slices named
//     "irrevocable".
//
// Virtual cycles are reported as microseconds (ts is cycles verbatim):
// the viewer only needs a consistent unit, and integer timestamps keep
// the output byte-stable. All args maps are encoded by encoding/json,
// which sorts keys, so the export is deterministic given the event
// stream — which is itself deterministic given the RunConfig.

// TraceMeta tags an exported trace with the run cell that produced it,
// so a timeline loaded days later identifies its seed and schedule.
// Everything lands in the top-level otherData object.
type TraceMeta struct {
	Benchmark string
	Mode      string
	Threads   int
	Seed      int64
	Sched     string
	SchedSeed int64
	// Extra carries campaign-specific tags (chaos profile, exploration
	// run index, minimized-prefix length, ...). Keys are sorted by
	// encoding/json on output.
	Extra map[string]string
}

// traceFile is the JSON Object Format top level.
type traceFile struct {
	TraceEvents     []traceEvent      `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData"`
}

// traceEvent is one Trace Event spec event. Fields beyond the common
// four are optional per phase type and omitted when empty.
type traceEvent struct {
	Name string `json:"name"`
	Cat  string `json:"cat,omitempty"`
	Ph   string `json:"ph"`
	Ts   uint64 `json:"ts"`
	Pid  int    `json:"pid"`
	Tid  int    `json:"tid"`
	ID   string `json:"id,omitempty"`
	BP   string `json:"bp,omitempty"`

	Args map[string]any `json:"args,omitempty"`
}

// WriteTrace renders a recorded event stream as a Chrome trace-event
// JSON object. The stream must come from one run with EnableTraceExt if
// lock/irrevocable intervals are wanted; a plain begin/commit/abort
// stream still produces a valid (slices-only) timeline.
func WriteTrace(w io.Writer, meta TraceMeta, events []htm.TraceEvent) error {
	out := make([]traceEvent, 0, len(events)+16)

	// Process and per-core thread names, so the viewer labels timelines
	// "core 0..N-1" instead of bare tids.
	out = append(out, traceEvent{
		Name: "process_name", Ph: "M", Pid: 0, Tid: 0,
		Args: map[string]any{"name": fmt.Sprintf("%s/%s", meta.Benchmark, meta.Mode)},
	})
	cores := map[int]bool{}
	for _, e := range events {
		cores[e.Core] = true
	}
	coreIDs := make([]int, 0, len(cores))
	for c := range cores {
		coreIDs = append(coreIDs, c)
	}
	sort.Ints(coreIDs)
	for _, c := range coreIDs {
		out = append(out, traceEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: c,
			Args: map[string]any{"name": fmt.Sprintf("core %d", c)},
		})
	}

	// openHolds maps (core, lock) to the async id of the open holding
	// interval so the matching release closes the right one. flowID
	// numbers abort arrows; holdID numbers holding periods. Both counters
	// are derived purely from stream order, hence deterministic.
	type holdKey struct {
		core int
		lock mem.Addr
	}
	openHolds := map[holdKey]int{}
	holdID := 0
	flowID := 0

	for _, e := range events {
		switch e.Kind {
		case htm.TraceBegin:
			out = append(out, traceEvent{
				Name: "tx", Cat: "tx", Ph: "B", Ts: e.Time, Pid: 0, Tid: e.Core,
			})
		case htm.TraceCommit:
			out = append(out, traceEvent{
				Name: "tx", Cat: "tx", Ph: "E", Ts: e.Time, Pid: 0, Tid: e.Core,
				Args: map[string]any{"outcome": "commit"},
			})
		case htm.TraceAbort:
			out = append(out, traceEvent{
				Name: "tx", Cat: "tx", Ph: "E", Ts: e.Time, Pid: 0, Tid: e.Core,
				Args: map[string]any{
					"outcome":   "abort",
					"reason":    e.Reason.String(),
					"conf_addr": fmt.Sprintf("%#x", uint64(e.ConfAddr)),
					"conf_pc":   fmt.Sprintf("%#x", e.ConfPC),
					"by_core":   e.ByCore,
				},
			})
			if e.Reason == htm.AbortConflict && e.ByCore != e.Core {
				// Flow arrow killer → victim. Both ends carry the same id;
				// bp "e" binds the start to the killer's enclosing slice if
				// one is open at that instant.
				id := fmt.Sprintf("abort-%d", flowID)
				flowID++
				args := map[string]any{"reason": e.Reason.String()}
				out = append(out,
					traceEvent{Name: "abort", Cat: "conflict", Ph: "s", Ts: e.Time,
						Pid: 0, Tid: e.ByCore, ID: id, BP: "e", Args: args},
					traceEvent{Name: "abort", Cat: "conflict", Ph: "f", Ts: e.Time,
						Pid: 0, Tid: e.Core, ID: id, BP: "e", Args: args},
				)
			}
		case htm.TraceLockAcquire:
			k := holdKey{e.Core, e.ConfAddr}
			id := holdID
			holdID++
			openHolds[k] = id
			out = append(out, traceEvent{
				Name: lockName(e.ConfAddr), Cat: "ablock", Ph: "b", Ts: e.Time,
				Pid: 0, Tid: e.Core, ID: fmt.Sprintf("hold-%d", id),
				Args: map[string]any{"lock": fmt.Sprintf("%#x", uint64(e.ConfAddr))},
			})
		case htm.TraceLockRelease:
			k := holdKey{e.Core, e.ConfAddr}
			id, ok := openHolds[k]
			if !ok {
				continue // release without recorded acquire (trace truncated)
			}
			delete(openHolds, k)
			out = append(out, traceEvent{
				Name: lockName(e.ConfAddr), Cat: "ablock", Ph: "e", Ts: e.Time,
				Pid: 0, Tid: e.Core, ID: fmt.Sprintf("hold-%d", id),
			})
		case htm.TraceIrrevBegin:
			out = append(out, traceEvent{
				Name: "irrevocable", Cat: "irrev", Ph: "B", Ts: e.Time, Pid: 0, Tid: e.Core,
			})
		case htm.TraceIrrevEnd:
			out = append(out, traceEvent{
				Name: "irrevocable", Cat: "irrev", Ph: "E", Ts: e.Time, Pid: 0, Tid: e.Core,
			})
		}
	}

	// A bounded trace can cut off mid-hold; close the leftovers at the
	// last event's time so the viewer never sees a dangling interval.
	// Deterministic order: sort leftover holds by their async id.
	if len(openHolds) != 0 && len(events) != 0 {
		end := events[len(events)-1].Time
		type leftover struct {
			k  holdKey
			id int
		}
		rest := make([]leftover, 0, len(openHolds))
		for k, id := range openHolds {
			rest = append(rest, leftover{k, id})
		}
		sort.Slice(rest, func(i, j int) bool { return rest[i].id < rest[j].id })
		for _, l := range rest {
			out = append(out, traceEvent{
				Name: lockName(l.k.lock), Cat: "ablock", Ph: "e", Ts: end,
				Pid: 0, Tid: l.k.core, ID: fmt.Sprintf("hold-%d", l.id),
				Args: map[string]any{"truncated": true},
			})
		}
	}

	f := traceFile{
		TraceEvents:     out,
		DisplayTimeUnit: "ns",
		OtherData:       otherData(meta),
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&f)
}

// lockName renders an advisory lock's interval name. Including the
// address makes same-lock holds share a Perfetto track.
func lockName(lock mem.Addr) string { return fmt.Sprintf("ablock %#x", uint64(lock)) }

// otherData flattens run tags for the trace's otherData object.
func otherData(meta TraceMeta) map[string]string {
	od := map[string]string{
		"benchmark": meta.Benchmark,
		"mode":      meta.Mode,
		"threads":   fmt.Sprint(meta.Threads),
		"seed":      fmt.Sprint(meta.Seed),
	}
	if meta.Sched != "" {
		od["sched"] = meta.Sched
		od["sched_seed"] = fmt.Sprint(meta.SchedSeed)
	}
	for k, v := range meta.Extra {
		od[k] = v
	}
	return od
}
