package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/harness"
	"repro/internal/stagger"
)

var update = flag.Bool("update", false, "rewrite golden files")

// obsConfig is the test cell: staggered mode so advisory-lock metrics
// and annotations are exercised, full extended trace capture.
func obsConfig(seed int64) harness.RunConfig {
	return harness.RunConfig{
		Benchmark: "list-hi",
		Mode:      stagger.ModeStaggeredHW,
		Threads:   8, // enough contention for the policy to deploy locks
		Seed:      seed,
		TotalOps:  800,
		TraceN:    -1,
		ExtTrace:  true,
	}
}

// exportRun produces the two observability artifacts for one config.
func exportRun(t *testing.T, rc harness.RunConfig) (metrics, trace []byte) {
	t.Helper()
	res, err := harness.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	metrics, err = json.MarshalIndent(Snapshot(res), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	meta := TraceMeta{
		Benchmark: rc.Benchmark, Mode: rc.Mode.String(), Threads: rc.Threads,
		Seed: rc.Seed, Sched: rc.Sched, SchedSeed: rc.SchedSeed,
	}
	if err := WriteTrace(&buf, meta, res.Trace); err != nil {
		t.Fatal(err)
	}
	return metrics, buf.Bytes()
}

// TestOutputsIdenticalAcrossWorkersAndRuns pins the determinism
// contract: metrics JSON and trace JSON are byte-identical between two
// runs of the same config, and between sweeps executed with 1 worker
// and 4 workers (parallelism exists only between runs, never inside
// one, so worker count must not leak into any output byte).
func TestOutputsIdenticalAcrossWorkersAndRuns(t *testing.T) {
	seeds := []int64{1, 7, 42}

	sweep := func(workers int) (metrics, traces [][]byte) {
		harness.ClearCache()
		prev := harness.SetWorkers(workers)
		defer harness.SetWorkers(prev)
		cfgs := make([]harness.RunConfig, len(seeds))
		for i, s := range seeds {
			cfgs[i] = obsConfig(s)
		}
		// Warm the sweep through RunAll so worker goroutines actually run
		// concurrently at workers > 1, then export each cell.
		for i, o := range harness.RunAll(context.Background(), cfgs, workers) {
			if o.Err != nil {
				t.Fatalf("seed %d: %v", seeds[i], o.Err)
			}
			m, err := json.MarshalIndent(Snapshot(o.Res), "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			meta := TraceMeta{Benchmark: cfgs[i].Benchmark, Mode: cfgs[i].Mode.String(),
				Threads: cfgs[i].Threads, Seed: cfgs[i].Seed}
			if err := WriteTrace(&buf, meta, o.Res.Trace); err != nil {
				t.Fatal(err)
			}
			metrics = append(metrics, m)
			traces = append(traces, buf.Bytes())
		}
		return metrics, traces
	}

	m1, t1 := sweep(1)
	m4, t4 := sweep(4)
	m1b, t1b := sweep(1) // repeat at same seed: run-to-run identity
	for i, s := range seeds {
		if !bytes.Equal(m1[i], m4[i]) {
			t.Errorf("seed %d: metrics differ between -workers=1 and -workers=4", s)
		}
		if !bytes.Equal(t1[i], t4[i]) {
			t.Errorf("seed %d: trace differs between -workers=1 and -workers=4", s)
		}
		if !bytes.Equal(m1[i], m1b[i]) {
			t.Errorf("seed %d: metrics differ between two identical runs", s)
		}
		if !bytes.Equal(t1[i], t1b[i]) {
			t.Errorf("seed %d: trace differs between two identical runs", s)
		}
	}
}

// TestGoldenReport pins the exact metrics JSON for one cell. Any change
// to the report schema, sort orders, or the counters feeding it shows up
// as a byte diff here (regenerate with go test ./internal/obs -update).
func TestGoldenReport(t *testing.T) {
	metrics, _ := exportRun(t, obsConfig(42))
	golden := filepath.Join("testdata", "report-list-hi.json")
	if *update {
		if err := os.WriteFile(golden, metrics, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(metrics, want) {
		t.Errorf("metrics JSON diverged from %s (rerun with -update if intended)\ngot:\n%s", golden, metrics)
	}
}

// TestTraceSchema validates the exported trace against the Chrome
// trace-event rules Perfetto relies on: required fields on every event,
// balanced B/E per thread, every async "b" closed by a matching
// cat+id "e", every flow "s" consumed by an "f", and run tags present.
func TestTraceSchema(t *testing.T) {
	_, trace := exportRun(t, obsConfig(42))

	var f struct {
		TraceEvents []map[string]any  `json:"traceEvents"`
		OtherData   map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(trace, &f); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}
	for _, k := range []string{"benchmark", "mode", "threads", "seed"} {
		if f.OtherData[k] == "" {
			t.Errorf("otherData missing %q", k)
		}
	}

	depth := map[float64]int{}    // tid -> open B slices
	asyncOpen := map[string]int{} // cat+id -> open async intervals
	flows := map[string]int{}     // id -> starts minus finishes
	var txB, txE, lockB, lockE int
	for i, e := range f.TraceEvents {
		ph, _ := e["ph"].(string)
		if ph == "" {
			t.Fatalf("event %d: missing ph: %v", i, e)
		}
		if _, ok := e["name"].(string); !ok {
			t.Fatalf("event %d: missing name: %v", i, e)
		}
		for _, k := range []string{"ts", "pid", "tid"} {
			if _, ok := e[k].(float64); !ok {
				t.Fatalf("event %d: missing numeric %s: %v", i, k, e)
			}
		}
		tid := e["tid"].(float64)
		cat, _ := e["cat"].(string)
		id, _ := e["id"].(string)
		switch ph {
		case "B":
			depth[tid]++
			if cat == "tx" {
				txB++
			}
		case "E":
			depth[tid]--
			if depth[tid] < 0 {
				t.Fatalf("event %d: E without open B on tid %v", i, tid)
			}
			if cat == "tx" {
				txE++
			}
		case "b":
			asyncOpen[cat+"/"+id]++
			lockB++
		case "e":
			key := cat + "/" + id
			asyncOpen[key]--
			if asyncOpen[key] < 0 {
				t.Fatalf("event %d: async e without open b for %s", i, key)
			}
			lockE++
		case "s":
			flows[id]++
		case "f":
			flows[id]--
			if flows[id] < 0 {
				t.Fatalf("event %d: flow f before s for id %s", i, id)
			}
		case "M":
			// metadata carries only name/args
		default:
			t.Fatalf("event %d: unexpected phase %q", i, ph)
		}
	}
	for tid, d := range depth {
		if d != 0 {
			t.Errorf("tid %v: %d unclosed B slices", tid, d)
		}
	}
	for key, n := range asyncOpen {
		if n != 0 {
			t.Errorf("async interval %s: %d unclosed", key, n)
		}
	}
	for id, n := range flows {
		if n != 0 {
			t.Errorf("flow %s: unbalanced by %d", id, n)
		}
	}
	if txB == 0 || txB != txE {
		t.Errorf("tx slices unbalanced: %d B vs %d E", txB, txE)
	}
	if lockB == 0 {
		t.Error("no advisory-lock holding intervals exported (ExtTrace run should have them)")
	}
	if lockB != lockE {
		t.Errorf("lock intervals unbalanced: %d b vs %d e", lockB, lockE)
	}
}

// TestTraceTruncatedHoldsClosed exports a bounded trace that cuts off
// while locks are held and checks every async interval still closes.
func TestTraceTruncatedHoldsClosed(t *testing.T) {
	rc := obsConfig(42)
	rc.TraceN = 50 // cut mid-run
	res, err := harness.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, TraceMeta{Benchmark: rc.Benchmark, Mode: rc.Mode.String()}, res.Trace); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	open := map[string]int{}
	for _, e := range f.TraceEvents {
		ph, _ := e["ph"].(string)
		id, _ := e["id"].(string)
		switch ph {
		case "b":
			open[id]++
		case "e":
			open[id]--
		}
	}
	for id, n := range open {
		if n != 0 {
			t.Errorf("interval %s left open in truncated trace", id)
		}
	}
}

// TestMarkdownRendersEverySection smoke-tests the renderer against a
// real report: all section headers present, no stray formatting verbs.
func TestMarkdownRendersEverySection(t *testing.T) {
	res, err := harness.Run(obsConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMarkdown(&buf, Snapshot(res)); err != nil {
		t.Fatal(err)
	}
	md := buf.String()
	for _, want := range []string{
		"## Run report:", "### Cycle breakdown", "### Aborts by cause",
		"### Per atomic block", "### Conflict attribution", "### Advisory locks",
		"speculative useful", "advisory-lock wait",
	} {
		if !bytes.Contains([]byte(md), []byte(want)) {
			t.Errorf("markdown missing %q", want)
		}
	}
	if bytes.Contains([]byte(md), []byte("%!")) {
		t.Error("markdown contains a botched format verb")
	}
}

// TestSnapshotReconciles checks the per-site cycle attribution sums back
// to the machine-wide breakdown (the same totals seen from two angles),
// within nothing: the deltas are exact, so equality is exact.
func TestSnapshotReconciles(t *testing.T) {
	res, err := harness.Run(obsConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	rep := Snapshot(res)

	var siteUseful, siteWasted, siteLockWait uint64
	for _, s := range rep.Sites {
		siteUseful += s.Cycles.Useful
		siteWasted += s.Cycles.Wasted
		siteLockWait += s.Cycles.LockWait
	}
	if siteUseful != rep.Cycles.Useful {
		t.Errorf("per-site useful %d != machine useful %d", siteUseful, rep.Cycles.Useful)
	}
	if siteWasted != rep.Cycles.Wasted {
		t.Errorf("per-site wasted %d != machine wasted %d", siteWasted, rep.Cycles.Wasted)
	}
	if siteLockWait != rep.Cycles.LockWait {
		t.Errorf("per-site lock wait %d != machine lock wait %d", siteLockWait, rep.Cycles.LockWait)
	}

	var perCore uint64
	for _, c := range rep.PerCore {
		perCore += c.Cycles.Useful
	}
	if perCore != rep.Cycles.Useful {
		t.Errorf("per-core useful %d != machine useful %d", perCore, rep.Cycles.Useful)
	}

	if rep.Locks.Acquired == 0 {
		t.Error("staggered run acquired no advisory locks")
	}
	if rep.Locks.HoldCycles == 0 {
		t.Error("no lock hold cycles recorded")
	}
	var siteLocks uint64
	for _, s := range rep.Sites {
		siteLocks += s.Locks
	}
	if siteLocks != rep.Locks.Acquired {
		t.Errorf("per-site locks %d != total acquired %d", siteLocks, rep.Locks.Acquired)
	}
}

// TestAnchorDescriptions checks conflict histogram entries resolve to
// readable anchor descriptions (function names, not "?") when the
// compiled module is present.
func TestAnchorDescriptions(t *testing.T) {
	res, err := harness.Run(obsConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	rep := Snapshot(res)
	if len(rep.ConfPCs) == 0 {
		t.Skip("run produced no conflict aborts")
	}
	for _, p := range rep.ConfPCs {
		if p.Where == "?" {
			t.Errorf("site %d unresolved despite compiled module", p.Site)
		}
		if p.PC == "0x0" {
			t.Errorf("site %d has zero PC", p.Site)
		}
	}
}
