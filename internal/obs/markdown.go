package obs

import (
	"fmt"
	"io"
	"strings"
)

// Markdown rendering of a Report for cmd/staggerreport and the generated
// EXPERIMENTS.md appendix. Everything here formats numbers that Snapshot
// already sorted, so the output is deterministic.

// WriteMarkdown renders the full human-readable report.
func WriteMarkdown(w io.Writer, rep *Report) error {
	var b strings.Builder
	ident := fmt.Sprintf("`%s` / %s / %d threads / seed %d / %d ops",
		rep.Benchmark, rep.Mode, rep.Threads, rep.Seed, rep.Ops)
	if rep.Sched != "" {
		ident += fmt.Sprintf(" / sched `%s` seed %d", rep.Sched, rep.SchedSeed)
	}
	fmt.Fprintf(&b, "## Run report: %s\n\n", ident)
	fmt.Fprintf(&b, "makespan %d cycles, %d commits (%d irrevocable), %d aborts (%.2f/commit), W/U %.3f\n\n",
		rep.Makespan, rep.Commits, rep.IrrevocableCommits, rep.AbortsTotal,
		rep.AbortsPerCommit, rep.WastedOverUseful)

	b.WriteString("### Cycle breakdown\n\n")
	WriteCycleTable(&b, rep)

	if len(rep.Aborts) != 0 {
		b.WriteString("\n### Aborts by cause\n\n")
		b.WriteString("| cause | count |\n|---|---:|\n")
		for _, a := range rep.Aborts {
			fmt.Fprintf(&b, "| %s | %d |\n", a.Reason, a.Count)
		}
	}

	if len(rep.Sites) != 0 {
		b.WriteString("\n### Per atomic block\n\n")
		b.WriteString("| id | block | commits | aborts | locks | useful | wasted | lock-wait | backoff | global-wait | nt-ovh |\n")
		b.WriteString("|---:|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n")
		for _, s := range rep.Sites {
			var aborts uint64
			for _, a := range s.Aborts {
				aborts += a.Count
			}
			fmt.Fprintf(&b, "| %d | %s | %d | %d | %d | %d | %d | %d | %d | %d | %d |\n",
				s.ID, s.Name, s.Commits, aborts, s.Locks,
				s.Cycles.Useful, s.Cycles.Wasted, s.Cycles.LockWait,
				s.Cycles.Backoff, s.Cycles.GlobalWait, s.Cycles.NTOverhead)
		}
	}

	b.WriteString("\n### Conflict attribution\n\n")
	WriteConflictTables(&b, rep, 0)

	b.WriteString("\n### Advisory locks\n\n")
	fmt.Fprintf(&b, "| acquired | timeouts | reclaimed | contended commits | hold cycles | mean hold | wait cycles |\n")
	fmt.Fprintf(&b, "|---:|---:|---:|---:|---:|---:|---:|\n")
	fmt.Fprintf(&b, "| %d | %d | %d | %d | %d | %.1f | %d |\n",
		rep.Locks.Acquired, rep.Locks.Timeouts, rep.Locks.Reclaimed,
		rep.Locks.ContendedCommits, rep.Locks.HoldCycles, rep.Locks.MeanHold(),
		rep.Locks.WaitCycles)

	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCycleTable renders the machine-wide cycle-attribution table: each
// category's cycles and its share of summed per-core final clocks.
func WriteCycleTable(w io.Writer, rep *Report) {
	var total uint64
	for _, pc := range rep.PerCore {
		total += pc.FinalClock
	}
	pct := func(v uint64) string {
		if total == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(v)/float64(total))
	}
	c := &rep.Cycles
	fmt.Fprintf(w, "| category | cycles | of total |\n|---|---:|---:|\n")
	fmt.Fprintf(w, "| speculative useful | %d | %s |\n", c.Useful, pct(c.Useful))
	fmt.Fprintf(w, "| wasted by aborts | %d | %s |\n", c.Wasted, pct(c.Wasted))
	fmt.Fprintf(w, "| advisory-lock wait | %d | %s |\n", c.LockWait, pct(c.LockWait))
	fmt.Fprintf(w, "| retry backoff | %d | %s |\n", c.Backoff, pct(c.Backoff))
	fmt.Fprintf(w, "| global-lock wait | %d | %s |\n", c.GlobalWait, pct(c.GlobalWait))
	if c.FaultWait != 0 {
		fmt.Fprintf(w, "| fault-injected stall | %d | %s |\n", c.FaultWait, pct(c.FaultWait))
	}
	fmt.Fprintf(w, "| NT overhead in tx (sub) | %d | %s |\n", c.NTOverhead, pct(c.NTOverhead))
}

// WriteConflictTables renders the conflicting-anchor and -line top lists
// (topN <= 0 means all entries).
func WriteConflictTables(w io.Writer, rep *Report, topN int) {
	pcs, addrs := rep.ConfPCs, rep.ConfAddrs
	if topN > 0 && len(pcs) > topN {
		pcs = pcs[:topN]
	}
	if topN > 0 && len(addrs) > topN {
		addrs = addrs[:topN]
	}
	if len(pcs) == 0 && len(addrs) == 0 {
		fmt.Fprintf(w, "no conflict aborts recorded\n")
		return
	}
	if len(pcs) != 0 {
		fmt.Fprintf(w, "| anchor PC | site | where | conflict aborts |\n|---|---:|---|---:|\n")
		for _, p := range pcs {
			fmt.Fprintf(w, "| %s | %d | %s | %d |\n", p.PC, p.Site, p.Where, p.Aborts)
		}
	}
	if len(addrs) != 0 {
		fmt.Fprintf(w, "\n| cache line | conflict aborts |\n|---|---:|\n")
		for _, a := range addrs {
			fmt.Fprintf(w, "| %s | %d |\n", a.Line, a.Aborts)
		}
	}
}
