// Package obs is the observability layer over the simulator: it turns
// one run's raw counters and event stream into (a) a deterministic,
// stable-sorted metrics report and (b) a Chrome trace-event timeline
// that Perfetto or chrome://tracing can load.
//
// The layer is strictly read-only and post-hoc: Snapshot derives every
// number from counters the simulation already maintains (htm.CoreStats,
// stagger.Metrics, the per-atomic-block aggregates, and the conflict
// histograms), and the trace exporter consumes the machine's recorded
// event stream. Nothing here issues simulated memory events, so enabling
// observability never changes virtual times, schedules, or statistics —
// the determinism contract the golden-report tests pin down:
//
//   - the same RunConfig produces byte-identical JSON on every run,
//     at any harness worker count (parallelism exists only between
//     runs, never inside one);
//   - JSON field order is fixed by the struct definitions, every
//     collection is a slice sorted by an explicit deterministic rule
//     (never a Go map), and floats are derived from integer counters.
//
// The report answers the paper's attribution questions per run: where
// cycles went (speculative useful, wasted by aborts, advisory-lock
// spin, backoff, global-lock wait, NT lock-manipulation overhead), what
// aborted whom (per-cause counts, per-line and per-anchor conflict
// histograms — Tables 1 and 4), and how the advisory locks behaved
// (acquisitions, hold times, contended commits, timeouts, reclaims).
package obs

import (
	"fmt"
	"sort"

	"repro/internal/harness"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/prog"
	"repro/internal/stagger"
)

// Report is the structured metrics registry for one run. Field order is
// the JSON output order; all slices are stable-sorted by Snapshot.
type Report struct {
	// Identity: which experiment cell produced this report.
	Benchmark string `json:"benchmark"`
	Mode      string `json:"mode"`
	Threads   int    `json:"threads"`
	Seed      int64  `json:"seed"`
	Ops       int    `json:"ops"`
	Sched     string `json:"sched,omitempty"`
	SchedSeed int64  `json:"sched_seed,omitempty"`

	// Headline aggregates.
	Makespan           uint64  `json:"makespan"`
	Commits            uint64  `json:"commits"`
	IrrevocableCommits uint64  `json:"irrevocable_commits"`
	AbortsTotal        uint64  `json:"aborts_total"`
	AbortsPerCommit    float64 `json:"aborts_per_commit"`
	WastedOverUseful   float64 `json:"wasted_over_useful"`

	// Cycle attribution, machine-wide and per core.
	Cycles  CycleBreakdown  `json:"cycles"`
	PerCore []CoreBreakdown `json:"per_core"`

	// Abort attribution by cause, by atomic block, by conflicting anchor
	// (PC), by conflicting cache line, and by fully attributed
	// victim/killer site pair.
	Aborts    []AbortCount  `json:"aborts"`
	Sites     []SiteMetrics `json:"sites"`
	ConfPCs   []AnchorCount `json:"conflicting_anchors"`
	ConfAddrs []AddrCount   `json:"conflicting_lines"`
	ConfPairs []PairCount   `json:"conflicting_pairs"`

	// Advisory-lock behaviour.
	Locks LockMetrics `json:"locks"`
}

// CycleBreakdown attributes cycles spent in or around transactions.
// NTOverhead is a sub-attribution of Useful+Wasted (the attempt windows
// include the NT accesses issued inside them), not a disjoint category.
type CycleBreakdown struct {
	Useful     uint64 `json:"useful"`
	Wasted     uint64 `json:"wasted"`
	LockWait   uint64 `json:"lock_wait"`
	Backoff    uint64 `json:"backoff"`
	GlobalWait uint64 `json:"global_wait"`
	FaultWait  uint64 `json:"fault_wait"`
	NTOverhead uint64 `json:"nt_overhead"`
}

// CoreBreakdown is one core's share of the run.
type CoreBreakdown struct {
	Core       int            `json:"core"`
	FinalClock uint64         `json:"final_clock"`
	Commits    uint64         `json:"commits"`
	Aborts     uint64         `json:"aborts"`
	Cycles     CycleBreakdown `json:"cycles"`
}

// AbortCount is one abort cause's tally.
type AbortCount struct {
	Reason string `json:"reason"`
	Count  uint64 `json:"count"`
}

// SiteMetrics attributes behaviour to one atomic block (txSite): the
// per-block share of commits, aborts, advisory locks, and cycles.
type SiteMetrics struct {
	ID      int            `json:"id"`
	Name    string         `json:"name"`
	Commits uint64         `json:"commits"`
	Aborts  []AbortCount   `json:"aborts,omitempty"`
	Locks   uint64         `json:"locks"`
	Cycles  CycleBreakdown `json:"cycles"`
}

// AnchorCount is one anchor's conflict-abort tally: the static site the
// aborted core's first access to the conflicting line resolved to.
type AnchorCount struct {
	Site   uint32 `json:"site"`
	PC     string `json:"pc"`
	Where  string `json:"where"`
	Aborts int    `json:"aborts"`
}

// AddrCount is one cache line's conflict-abort tally.
type AddrCount struct {
	Line   string `json:"line"`
	Aborts int    `json:"aborts"`
}

// PairCount is one fully attributed conflicting pair's tally: the
// victim atomic block with its first access to the conflicting line,
// and the killer block with the access that aborted it. These are the
// pairs `staggersim -verify-conflicts` proves are contained in the
// static may-conflict matrix.
type PairCount struct {
	VictimAB    int    `json:"victim_ab"`
	VictimSite  uint32 `json:"victim_site"`
	VictimWhere string `json:"victim_where"`
	KillerAB    int    `json:"killer_ab"`
	KillerSite  uint32 `json:"killer_site"`
	KillerWhere string `json:"killer_where"`
	Aborts      int    `json:"aborts"`
}

// LockMetrics summarizes advisory-lock behaviour over the run.
type LockMetrics struct {
	Acquired         uint64 `json:"acquired"`
	Timeouts         uint64 `json:"timeouts"`
	Reclaimed        uint64 `json:"reclaimed"`
	HoldCycles       uint64 `json:"hold_cycles"`
	WaitCycles       uint64 `json:"wait_cycles"`
	ContendedCommits uint64 `json:"contended_commits"`
}

// MeanHold returns the mean advisory-lock holding period in cycles.
func (l *LockMetrics) MeanHold() float64 {
	if l.Acquired == 0 {
		return 0
	}
	return float64(l.HoldCycles) / float64(l.Acquired)
}

// Snapshot builds the metrics report for a completed run. It reads only
// Result fields (no simulation state), so it can run on cached results
// and long after the machine is gone.
func Snapshot(r *harness.Result) *Report {
	s := &r.Stats
	rep := &Report{
		Benchmark:          r.Config.Benchmark,
		Mode:               r.Config.Mode.String(),
		Threads:            r.Config.Threads,
		Seed:               r.Config.Seed,
		Ops:                r.TotalOps,
		Sched:              r.Config.Sched,
		SchedSeed:          r.Config.SchedSeed,
		Makespan:           s.Makespan,
		Commits:            s.Commits,
		IrrevocableCommits: s.IrrevocableCommits,
		AbortsTotal:        s.TotalAborts(),
		AbortsPerCommit:    s.AbortsPerCommit(),
		WastedOverUseful:   s.WastedOverUseful(),
		Cycles:             breakdown(&s.CoreStats),
		Locks: LockMetrics{
			Acquired:         r.Metrics.LocksAcquired,
			Timeouts:         r.Metrics.LockTimeouts,
			Reclaimed:        r.Metrics.LocksReclaimed,
			HoldCycles:       r.Metrics.LockHoldCycles,
			WaitCycles:       s.WaitCycles[htm.WaitLock],
			ContendedCommits: r.Metrics.ContendedCommits,
		},
	}

	rep.PerCore = make([]CoreBreakdown, 0, r.Config.Threads)
	for i := range s.PerCore {
		if i >= r.Config.Threads {
			break // idle cores carry no cycles
		}
		cs := &s.PerCore[i]
		rep.PerCore = append(rep.PerCore, CoreBreakdown{
			Core:       i,
			FinalClock: cs.FinalClock,
			Commits:    cs.Commits,
			Aborts:     cs.TotalAborts(),
			Cycles:     breakdown(cs),
		})
	}

	rep.Aborts = abortCounts(s.Aborts)

	ids := make([]int, 0, len(r.PerAB))
	for id := range r.PerAB {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		ab := r.PerAB[id]
		rep.Sites = append(rep.Sites, SiteMetrics{
			ID:      id,
			Name:    ab.Name,
			Commits: ab.Commits,
			Aborts:  abortCounts(ab.Aborts),
			Locks:   ab.Locks,
			Cycles: CycleBreakdown{
				Useful:     ab.UsefulCycles,
				Wasted:     ab.WastedCycles,
				LockWait:   ab.LockWaitCycles,
				Backoff:    ab.BackoffCycles,
				GlobalWait: ab.GlobalWaitCycles,
				NTOverhead: ab.NTTxCycles,
			},
		})
	}

	rep.ConfPCs = anchorCounts(r.ConfPCs, r)
	rep.ConfAddrs = addrCounts(r.ConfAddrs)
	rep.ConfPairs = pairCounts(r.ConfPairs, r)
	return rep
}

// pairCounts sorts the conflicting-pair histogram by abort count
// descending, then by victim and killer identity ascending on ties — a
// total deterministic order.
func pairCounts(hist map[stagger.ConflictPair]int, r *harness.Result) []PairCount {
	out := make([]PairCount, 0, len(hist))
	for p, n := range hist {
		out = append(out, PairCount{
			VictimAB:    p.VictimAB,
			VictimSite:  p.VictimSite,
			VictimWhere: siteWhere(r, p.VictimSite),
			KillerAB:    p.KillerAB,
			KillerSite:  p.KillerSite,
			KillerWhere: siteWhere(r, p.KillerSite),
			Aborts:      n,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Aborts != b.Aborts {
			return a.Aborts > b.Aborts
		}
		if a.VictimAB != b.VictimAB {
			return a.VictimAB < b.VictimAB
		}
		if a.VictimSite != b.VictimSite {
			return a.VictimSite < b.VictimSite
		}
		if a.KillerAB != b.KillerAB {
			return a.KillerAB < b.KillerAB
		}
		return a.KillerSite < b.KillerSite
	})
	return out
}

// breakdown maps core counters to the report's cycle categories.
func breakdown(cs *htm.CoreStats) CycleBreakdown {
	return CycleBreakdown{
		Useful:     cs.UsefulTxCycles,
		Wasted:     cs.WastedTxCycles,
		LockWait:   cs.WaitCycles[htm.WaitLock],
		Backoff:    cs.WaitCycles[htm.WaitBackoff],
		GlobalWait: cs.WaitCycles[htm.WaitGlobal],
		FaultWait:  cs.WaitCycles[htm.WaitFault],
		NTOverhead: cs.NTTxCycles,
	}
}

// abortCounts renders a per-reason counter array as a slice in reason
// order, skipping zero rows (AbortNone is always zero by construction).
func abortCounts(a [htm.NumAbortReasons]uint64) []AbortCount {
	var out []AbortCount
	for reason, n := range a {
		if n == 0 {
			continue
		}
		out = append(out, AbortCount{Reason: htm.AbortReason(reason).String(), Count: n})
	}
	return out
}

// anchorCounts sorts the conflicting-anchor histogram by abort count
// descending, site ID ascending on ties — a total deterministic order.
func anchorCounts(hist map[uint32]int, r *harness.Result) []AnchorCount {
	out := make([]AnchorCount, 0, len(hist))
	for site, n := range hist {
		out = append(out, AnchorCount{
			Site:   site,
			PC:     fmt.Sprintf("%#x", sitePC(r, site)),
			Where:  siteWhere(r, site),
			Aborts: n,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Aborts != out[j].Aborts {
			return out[i].Aborts > out[j].Aborts
		}
		return out[i].Site < out[j].Site
	})
	return out
}

// addrCounts sorts the conflicting-line histogram by abort count
// descending, line address ascending on ties.
func addrCounts(hist map[mem.Addr]int) []AddrCount {
	type row struct {
		line mem.Addr
		n    int
	}
	rows := make([]row, 0, len(hist))
	for a, n := range hist {
		rows = append(rows, row{a, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].line < rows[j].line
	})
	out := make([]AddrCount, len(rows))
	for i, r := range rows {
		out[i] = AddrCount{Line: fmt.Sprintf("%#x", uint64(r.line)), Aborts: r.n}
	}
	return out
}

// sitePC resolves a static site ID to its program counter, 0 if unknown.
func sitePC(r *harness.Result, id uint32) uint64 {
	if s := siteOf(r, id); s != nil {
		return s.PC
	}
	return 0
}

// siteWhere renders a static site as "func.field op" for human output.
func siteWhere(r *harness.Result, id uint32) string {
	s := siteOf(r, id)
	if s == nil {
		return "?"
	}
	op := "load"
	if s.IsStore {
		op = "store"
	}
	where := s.Fn.Name
	if s.Field != "" {
		where += "." + s.Field
	}
	return where + " " + op
}

func siteOf(r *harness.Result, id uint32) *prog.Site {
	if r.Compiled == nil || r.Compiled.Mod == nil {
		return nil
	}
	byID := r.Compiled.Mod.SiteByID
	if int(id) >= len(byID) {
		return nil
	}
	return byID[id]
}
