// Package testutil holds small helpers shared by the repo's test
// suites. It is imported only from _test.go files; keeping the helpers
// in a real package (rather than copy-pasted per suite) lets the drain,
// recovery, and crash tests assert identical hygiene invariants.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// GoroutineBaseline snapshots the current goroutine count. Call it
// before constructing the system under test, then hand the result to
// WaitNoGoroutineLeaks after tearing it down.
func GoroutineBaseline() int { return runtime.NumGoroutine() }

// WaitNoGoroutineLeaks fails t unless the goroutine count settles back
// to the baseline (plus slack for runtime background goroutines) within
// a few seconds. Shutdown is asynchronous — workers unwind after
// Drained() closes — so the assertion polls with a bounded number of
// fixed sleeps rather than reading the wall clock, which staggervet
// reserves for the service layer.
func WaitNoGoroutineLeaks(t testing.TB, baseline int) {
	t.Helper()
	const (
		slack    = 2
		attempts = 500 // x 10ms = ~5s bound
	)
	for i := 0; i < attempts; i++ {
		if runtime.NumGoroutine() <= baseline+slack {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutines leaked: %d > baseline %d (+%d slack)\n%s",
		runtime.NumGoroutine(), baseline, slack, buf[:runtime.Stack(buf, true)])
}
